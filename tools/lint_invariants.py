#!/usr/bin/env python3
"""Domain invariant lints the compiler cannot express.

Registered as ctest cases alongside docs_links (`ctest -R lint_`), so a
violation fails the suite, not a reviewer's eyeball.  Each rule encodes a
repo-wide discipline whose rationale lives where the discipline does:

  raw-mutex           Every lock site must be analysable by Clang's thread
                      safety analysis, so no raw std::mutex /
                      std::condition_variable / std::lock_guard /
                      std::unique_lock / std::scoped_lock outside
                      src/common/thread_annotations.hpp — use spinn::Mutex,
                      spinn::CondVar, spinn::MutexLock.
  raw-int-parse       Wire-side integers (src/net, src/server) parse through
                      parse_u64_strict / from_chars-based helpers, never the
                      saturate-and-succeed strto*/ato*/sto* family.
  reactor-blocking    Nothing inside a reactor event-loop body — any
                      NetServer::*loop*() / Reactor::*loop*() definition in
                      the reactor files — may block (sleeps, joins, session
                      waits, stdio reads): one stuck call stalls every
                      connection on that reactor.
  reactor-loop        Unbounded loops (for(;;)/while(true)) inside a reactor
                      event-loop body must contain a break or return — the
                      epoll loop itself is bounded by stopping_.
  fault-blocking      FaultController entry points execute inside the
                      engine's event loop as root-actor events (and under
                      the owning session's lock): no method body in
                      src/core/fault_controller.cpp may block — a sleep or
                      join inside a fault event stalls the whole engine at
                      a global quiesce point.
  frame-throw         The frame decode path (src/net/frame.*) is noexcept:
                      no `throw`, and FrameDecoder::next stays declared
                      noexcept (an exception unwinding the reactor thread
                      aborts the process).
  include-discipline  tests/bench/examples include project headers through
                      the public include root ("net/frame.hpp"), never by
                      relative escape ("../src/..."), never a .cpp, never
                      detail/ or *_internal.hpp headers.
  tsa-justify         SPINN_NO_THREAD_SAFETY_ANALYSIS is a last resort:
                      every use outside the macro's own header needs an
                      adjacent justifying comment (same line or one of the
                      three lines above).
  obs-hot-path        A body annotated `// obs:hot` is a telemetry hot
                      path — counter increments and trace records that run
                      per frame/spike.  No locks, no allocation, no
                      container growth inside it: instrumentation that
                      blocks or mallocs perturbs the thing it observes.
                      The obs headers must each carry at least one marker,
                      or the rule has silently stopped running.

Suppression: a `lint:allow(<rule>)` comment disables that rule from its own
line through the next ALLOW_WINDOW lines — close enough to function scope
that the justification stays next to the code it excuses.

Fixture mode (`--fixture file.cpp`) runs the rules against one file that
declares what it seeds:

    // lint-expect: raw-mutex
    // lint-path: src/server/whatever.cpp

and exits 0 only if every expected rule fires — the negative tests that keep
this linter from silently rotting.
"""

import argparse
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

SCAN_DIRS = ["src", "tests", "bench", "examples"]
EXTENSIONS = {".cpp", ".hpp", ".h", ".cc"}
WRAPPER_HEADER = "src/common/thread_annotations.hpp"
# Files whose event-loop bodies the reactor rules cover.  The loop itself
# lives in reactor.cpp; server.cpp stays listed so a loop ever moving back
# there (or a new orchestrator-side loop appearing) is covered, not missed.
REACTOR_FILES = ("src/net/server.cpp", "src/net/reactor.cpp")
# The file that must contain at least one loop body — scanning zero bodies
# anywhere would mean the rules silently stopped running.
REACTOR_LOOP_HOME = "src/net/reactor.cpp"
# Fault-controller entry points run as root-actor events inside the engine
# loop: the same no-blocking discipline as the reactors.
FAULT_FILE = "src/core/fault_controller.cpp"
ALLOW_WINDOW = 40

RAW_MUTEX = re.compile(
    r"std::(?:mutex|condition_variable(?:_any)?|lock_guard|unique_lock|"
    r"scoped_lock|shared_mutex|shared_lock|recursive_mutex|timed_mutex)\b"
)
RAW_INT_PARSE = re.compile(
    r"(?:\bstd::)?\b(?:strtou?ll?|strtoi?max|atoi|atol|atoll|atof|"
    r"sscanf|stoi|stol|stoll|stoul|stoull)\s*\("
)
BLOCKING_CALL = re.compile(
    r"\b(?:sleep_for|sleep_until|usleep|nanosleep|::sleep|system|popen|"
    r"fork|getline|fgets|fscanf|scanf|wait_idle|\.join)\s*\(|"
    r"\bsrv_\.wait\s*\(|\bsessions_\.wait\s*\("
)
UNBOUNDED_LOOP = re.compile(r"\bfor\s*\(\s*;;\s*\)|\bwhile\s*\(\s*true\s*\)")
# Any out-of-line *loop* method of the reactor classes: loop, drive_loop,
# accept_loop...  The brace matcher then isolates the definition body.
REACTOR_LOOP_DECL = re.compile(r"\b(?:NetServer|Reactor)::\w*loop\w*\s*\(")
# Any out-of-line FaultController method: schedule, execute, kill_core...
# New entry points are covered the day they are written.
FAULT_ENTRY_DECL = re.compile(r"\bFaultController::\w+\s*\(")
BAD_INCLUDE = re.compile(r'#\s*include\s*"([^"]+)"')
NO_TSA = re.compile(r"\bSPINN_NO_THREAD_SAFETY_ANALYSIS\b")
# The hot-path marker is a whole comment line, so a prose mention of
# `// obs:hot` inside another comment never arms the rule.
OBS_HOT_MARKER = re.compile(r"^\s*//\s*obs:hot\b")
OBS_HOT_FORBIDDEN = re.compile(
    r"\bMutexLock\b|\block\s*\(|\bnew\b|\bmalloc\s*\(|\bcalloc\s*\(|"
    r"\bmake_unique\b|\bmake_shared\b|\bpush_back\b|\bemplace_back\b|"
    r"\bresize\s*\(|\breserve\s*\(|\bstd::string\b|\bstd::vector\b"
)
# Headers that exist to provide hot-path machinery: each must carry at
# least one obs:hot marker or the rule is scanning nothing.
OBS_HOT_HOMES = ("src/obs/registry.hpp", "src/obs/trace.hpp",
                 "src/common/trace_ring.hpp")
ALLOW = re.compile(r"lint:allow\(([a-z-]+)\)")
COMMENT_TEXT = re.compile(r"//\s*(\S.*)$")


class Violation:
    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text):
    """Blank out comments and string/char literals, preserving line
    structure, so rule regexes never match prose or quoted examples."""
    out = []
    i, n = 0, len(text)
    mode = "code"  # code | line | block | str | chr
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if mode == "code":
            if ch == "/" and nxt == "/":
                mode = "line"
                out.append("  ")
                i += 2
                continue
            if ch == "/" and nxt == "*":
                mode = "block"
                out.append("  ")
                i += 2
                continue
            if ch == '"':
                mode = "str"
                out.append(" ")
                i += 1
                continue
            if ch == "'":
                mode = "chr"
                out.append(" ")
                i += 1
                continue
            out.append(ch)
        elif mode == "line":
            if ch == "\n":
                mode = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif mode == "block":
            if ch == "*" and nxt == "/":
                mode = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if ch == "\n" else " ")
        elif mode in ("str", "chr"):
            quote = '"' if mode == "str" else "'"
            if ch == "\\":
                out.append("  ")
                i += 2
                continue
            if ch == quote:
                mode = "code"
                out.append(" ")
            else:
                out.append("\n" if ch == "\n" else " ")
        i += 1
    return "".join(out)


def allowed_lines(raw_lines):
    """rule -> set of line numbers (1-based) the rule is suppressed on."""
    allowed = {}
    for lineno, line in enumerate(raw_lines, start=1):
        for match in ALLOW.finditer(line):
            rule = match.group(1)
            span = allowed.setdefault(rule, set())
            span.update(range(lineno, lineno + ALLOW_WINDOW + 1))
    return allowed


def brace_matched_region(code, start_index):
    """(start, end) indices of the brace-matched block opening at or after
    start_index; end is past the closing brace.  (-1, -1) if unbalanced."""
    open_idx = code.find("{", start_index)
    if open_idx < 0:
        return -1, -1
    depth = 0
    for i in range(open_idx, len(code)):
        if code[i] == "{":
            depth += 1
        elif code[i] == "}":
            depth -= 1
            if depth == 0:
                return open_idx, i + 1
    return -1, -1


def line_of(code, index):
    return code.count("\n", 0, index) + 1


def scan_file(rel_path, raw_text):
    """All violations in one file.  rel_path uses forward slashes and is
    relative to the repo root (fixtures override it via lint-path)."""
    violations = []
    raw_lines = raw_text.splitlines()
    code = strip_comments_and_strings(raw_text)
    code_lines = code.splitlines()
    allow = allowed_lines(raw_lines)

    def report(rule, lineno, message):
        if lineno in allow.get(rule, ()):
            return
        violations.append(Violation(rule, rel_path, lineno, message))

    in_src_scope = rel_path.split("/")[0] in SCAN_DIRS

    # raw-mutex: everywhere except the wrapper header itself.
    if in_src_scope and rel_path != WRAPPER_HEADER:
        for lineno, line in enumerate(code_lines, start=1):
            m = RAW_MUTEX.search(line)
            if m:
                report(
                    "raw-mutex", lineno,
                    f"{m.group(0)} outside {WRAPPER_HEADER}; use "
                    "spinn::Mutex / spinn::CondVar / spinn::MutexLock")

    # raw-int-parse: wire-side code only.
    if rel_path.startswith("src/net/") or rel_path.startswith("src/server/"):
        for lineno, line in enumerate(code_lines, start=1):
            m = RAW_INT_PARSE.search(line)
            if m:
                report(
                    "raw-int-parse", lineno,
                    f"{m.group(0).strip()}) parses a wire-side integer; "
                    "use parse_u64_strict or a from_chars helper")

    # reactor rules: every *loop* method body of NetServer or Reactor in
    # the reactor files (loop, drive_loop, ... — new loops are covered the
    # day they are written, not when someone remembers to list them).
    if rel_path in REACTOR_FILES:
        bodies_scanned = 0
        for decl in REACTOR_LOOP_DECL.finditer(code):
            start, end = brace_matched_region(code, decl.end())
            if start < 0:
                continue
            bodies_scanned += 1
            body = code[start:end]
            body_first_line = line_of(code, start)
            for off, line in enumerate(body.splitlines()):
                m = BLOCKING_CALL.search(line)
                if m:
                    report(
                        "reactor-blocking", body_first_line + off,
                        f"blocking call {m.group(0).strip()}...) inside "
                        f"{decl.group(0).strip()}...) stalls every "
                        "connection on this reactor")
            for m in UNBOUNDED_LOOP.finditer(body):
                l_start, l_end = brace_matched_region(body, m.end())
                loop_line = body_first_line + line_of(body, m.start()) - 1
                if l_start < 0:
                    continue
                loop_body = body[l_start:l_end]
                if not re.search(r"\bbreak\b|\breturn\b", loop_body):
                    report(
                        "reactor-loop", loop_line,
                        "unbounded loop inside the reactor with no "
                        "break/return")
        if rel_path == REACTOR_LOOP_HOME and bodies_scanned == 0:
            report("reactor-blocking", 1,
                   "no Reactor::*loop* body found — reactor rules cannot "
                   "run")

    # fault-blocking: every FaultController method body in the controller
    # file — they run as root-actor events inside the engine's event loop,
    # where one blocking call stalls the machine at a quiesce point.
    if rel_path == FAULT_FILE:
        bodies_scanned = 0
        for decl in FAULT_ENTRY_DECL.finditer(code):
            start, end = brace_matched_region(code, decl.end())
            if start < 0:
                continue
            bodies_scanned += 1
            body = code[start:end]
            body_first_line = line_of(code, start)
            for off, line in enumerate(body.splitlines()):
                m = BLOCKING_CALL.search(line)
                if m:
                    report(
                        "fault-blocking", body_first_line + off,
                        f"blocking call {m.group(0).strip()}...) inside "
                        f"{decl.group(0).strip()}...) stalls the engine "
                        "at a fault quiesce point")
        if bodies_scanned == 0:
            report("fault-blocking", 1,
                   "no FaultController method body found — fault rules "
                   "cannot run")

    # frame-throw: the decode path stays exception-free and noexcept.
    if rel_path in ("src/net/frame.cpp", "src/net/frame.hpp"):
        for lineno, line in enumerate(code_lines, start=1):
            if re.search(r"\bthrow\b", line):
                report("frame-throw", lineno,
                       "throw in the noexcept frame-decode path")
        if rel_path == "src/net/frame.hpp":
            if not re.search(r"\bnext\s*\([^)]*\)\s*noexcept", code):
                report("frame-throw", 1,
                       "FrameDecoder::next must be declared noexcept")

    # include-discipline: tests/bench/examples use the public include root.
    top = rel_path.split("/")[0]
    if top in ("tests", "bench", "examples"):
        for lineno, line in enumerate(raw_lines, start=1):
            m = BAD_INCLUDE.search(line)
            if not m:
                continue
            inc = m.group(1)
            if inc.startswith(".."):
                report("include-discipline", lineno,
                       f'#include "{inc}" escapes via a relative path; '
                       "include through the public root (e.g. "
                       '"net/frame.hpp")')
            elif inc.endswith(".cpp"):
                report("include-discipline", lineno,
                       f'#include "{inc}" includes a translation unit')
            elif "/detail/" in inc or inc.endswith("_internal.hpp"):
                report("include-discipline", lineno,
                       f'#include "{inc}" reaches an internal header')

    # obs-hot-path: the body following each `// obs:hot` marker must stay
    # lock-free and allocation-free.  Markers live in RAW lines (comments
    # are blanked in `code`); the body is brace-matched in the stripped
    # code starting just past the marker's line.
    if in_src_scope:
        markers = 0
        line_start = [0]
        for line in code_lines:
            line_start.append(line_start[-1] + len(line) + 1)
        for lineno, line in enumerate(raw_lines, start=1):
            if not OBS_HOT_MARKER.search(line):
                continue
            markers += 1
            if lineno >= len(line_start):
                continue
            start, end = brace_matched_region(code, line_start[lineno])
            if start < 0:
                report("obs-hot-path", lineno,
                       "obs:hot marker with no brace-matched body after it")
                continue
            body = code[start:end]
            body_first_line = line_of(code, start)
            for off, bline in enumerate(body.splitlines()):
                m = OBS_HOT_FORBIDDEN.search(bline)
                if m:
                    report(
                        "obs-hot-path", body_first_line + off,
                        f"{m.group(0).strip()} inside an obs:hot body; "
                        "telemetry hot paths must not lock or allocate")
        if rel_path in OBS_HOT_HOMES and markers == 0:
            report("obs-hot-path", 1,
                   "no obs:hot marker found — the hot-path rule is "
                   "scanning nothing in this file")

    # tsa-justify: the escape hatch needs an adjacent reason.
    if rel_path != WRAPPER_HEADER:
        for lineno, line in enumerate(raw_lines, start=1):
            if not NO_TSA.search(line):
                continue
            context = raw_lines[max(0, lineno - 4):lineno]
            justified = any(
                COMMENT_TEXT.search(prev) and
                "lint" not in COMMENT_TEXT.search(prev).group(1)
                for prev in context)
            if not justified:
                report(
                    "tsa-justify", lineno,
                    "SPINN_NO_THREAD_SAFETY_ANALYSIS without an adjacent "
                    "comment justifying why the analysis cannot see the "
                    "invariant")

    return violations


def iter_sources():
    for top in SCAN_DIRS:
        root = REPO / top
        if not root.is_dir():
            continue
        for path in sorted(root.rglob("*")):
            if path.suffix in EXTENSIONS and path.is_file():
                yield path.relative_to(REPO).as_posix(), path


def run_tree():
    violations = []
    checked = 0
    for rel, path in iter_sources():
        checked += 1
        violations.extend(scan_file(rel, path.read_text(encoding="utf-8")))
    for v in violations:
        print(v)
    print(f"lint_invariants: {checked} files, {len(violations)} violation(s)")
    return 1 if violations else 0


def run_fixture(fixture):
    text = Path(fixture).read_text(encoding="utf-8")
    expected = set(re.findall(r"//\s*lint-expect:\s*([a-z-]+)", text))
    path_m = re.search(r"//\s*lint-path:\s*(\S+)", text)
    if not expected or not path_m:
        print(f"{fixture}: fixture needs lint-expect: and lint-path: headers")
        return 1
    found = {v.rule for v in scan_file(path_m.group(1), text)}
    missing = expected - found
    if missing:
        print(f"{fixture}: seeded violation(s) NOT flagged: "
              f"{', '.join(sorted(missing))} (found: "
              f"{', '.join(sorted(found)) or 'none'})")
        return 1
    print(f"{fixture}: flagged as expected ({', '.join(sorted(expected))})")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--fixture", help="run rules against one fixture file "
                    "and require its lint-expect rules to fire")
    args = ap.parse_args()
    if args.fixture:
        return run_fixture(args.fixture)
    return run_tree()


if __name__ == "__main__":
    sys.exit(main())
