// E5 — §5.2: distributed boot and flood-fill application loading.
//
// Paper claims: "The flood-fill mechanism has been shown to give load times
// almost independent of the size of the machine, with trade-offs between
// load time and the degree of fault-tolerance, which can be controlled by
// the number of times a node receives each component of the application."
//
// Part A sweeps machine size at fixed image; Part B sweeps the redundancy
// factor under injected block loss.
#include <cstdio>

#include "boot/boot_controller.hpp"
#include "harness.hpp"
#include "mesh/machine.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace spinn;

struct Result {
  boot::BootReport report;
  bool finished = false;
};

Result run_boot(std::uint16_t dim, const boot::BootConfig& bc,
                std::uint64_t seed = 1) {
  sim::Simulator sim(seed);
  mesh::MachineConfig mc;
  mc.width = dim;
  mc.height = dim;
  mc.chip.num_cores = 2;  // boot exercises monitors, not app cores
  mc.seed = seed;
  mesh::Machine machine(sim, mc);
  boot::BootController controller(sim, machine, bc);
  Result r;
  controller.start([&](const boot::BootReport& rep) {
    r.report = rep;
    r.finished = true;
  });
  while (!r.finished && !sim.queue().empty() && sim.now() < 120 * kSecond) {
    sim.queue().step();
  }
  if (!r.finished) r.report = controller.report();
  return r;
}

double ms(TimeNs t) { return static_cast<double>(t) / kMillisecond; }

}  // namespace

int main(int argc, char** argv) {
  spinn::bench::Harness h("bench_e05_boot_floodfill", argc, argv);
  double load_growth_x = 0.0;
  boot::BootConfig bc;  // shared image geometry for both sweeps
  bc.image_blocks = 32;
  bc.words_per_block = 64;
  h.run("size_sweep", [&] {
    std::printf("E5: distributed boot + flood-fill load (§5.2)\n\n");

    std::printf("Part A: boot phases vs machine size (32-block image, "
                "redundancy 1)\n");
    std::printf("%-10s %8s %14s %14s %14s %14s %12s\n", "machine", "chips",
                "election(ms)", "coords(ms)", "p2p(ms)", "load(ms)",
                "nn packets");
    double load4 = 0, load_max = 0;
    for (const std::uint16_t dim : {4, 8, 12, 16, 20, 24}) {
      const Result r = run_boot(dim, bc);
      const auto& rep = r.report;
      const double load_phase = ms(rep.load_done - rep.p2p_done);
      if (dim == 4) load4 = load_phase;
      load_max = load_phase;
      std::printf("%2ux%-7u %8zu %14.2f %14.2f %14.2f %14.2f %12llu%s\n",
                  dim, dim, rep.chips_alive, ms(rep.elections_done),
                  ms(rep.coords_done - rep.elections_done),
                  ms(rep.p2p_done - rep.coords_done), load_phase,
                  static_cast<unsigned long long>(rep.nn_packets_sent),
                  rep.complete ? "" : "  [INCOMPLETE]");
    }
    load_growth_x = load4 > 0 ? load_max / load4 : 0.0;
    std::printf("\nLoad-phase growth from 16 to 576 chips: x%.2f  (paper: "
                "\"almost independent of the size of the machine\")\n\n",
                load_growth_x);
  });
  h.run("redundancy_sweep", [&] {
    std::printf("Part B: redundancy vs load time under 40%% block loss "
                "(16x16 machine)\n");
    std::printf("%-12s %14s %16s %14s %12s\n", "redundancy", "load(ms)",
                "duplicates", "lost blocks", "complete");
    for (const int redundancy : {1, 2, 3, 4}) {
      boot::BootConfig lossy = bc;
      lossy.redundancy = redundancy;
      lossy.block_loss_prob = 0.40;
      const Result r = run_boot(16, lossy, 7);
      char load_ms[24];
      if (r.report.complete) {
        std::snprintf(load_ms, sizeof load_ms, "%.2f",
                      ms(r.report.load_done - r.report.p2p_done));
      } else {
        std::snprintf(load_ms, sizeof load_ms, "stalled");
      }
      std::printf("%-12d %14s %16llu %14llu %12s\n", redundancy, load_ms,
                  static_cast<unsigned long long>(r.report.duplicate_blocks),
                  static_cast<unsigned long long>(r.report.blocks_lost),
                  r.report.complete ? "yes" : "NO");
    }
    std::printf("\nHigher redundancy buys loss tolerance with more "
                "duplicate traffic and a longer load phase\n(the §5.2 "
                "trade-off).\n");
  });
  h.metric("load_phase_growth_16_to_576_chips_x", load_growth_x);
  return h.finish();
}
