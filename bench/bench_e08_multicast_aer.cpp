// E8 — §4: "In the past AER has been used principally in bus-based
// broadcast communication between neurons, but here we employ a
// packet-switched multicast mechanism to reduce total communication
// loading."
//
// For the same neural connectivity we count link traversals per spike under
// three delivery schemes:
//   broadcast — every spike visits every chip (bus-style AER);
//   unicast   — one packet per destination core, each walking the full path;
//   multicast — one packet per spike, copied only at tree branch points
//               (the SpiNNaker router).
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "harness.hpp"
#include "map/routing_gen.hpp"
#include "mesh/machine.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace spinn;

struct TrafficCounts {
  double multicast = 0;
  double unicast = 0;
  double broadcast = 0;
};

/// Count per-spike link traversals for a network mapped on a dim x dim
/// machine where each source slice projects to `fanout_pops` populations.
TrafficCounts count_traffic(std::uint16_t dim, int fanout_pops) {
  sim::Simulator sim(5);
  mesh::MachineConfig mc;
  mc.width = dim;
  mc.height = dim;
  mc.chip.num_cores = 3;  // 2 app cores per chip
  mesh::Machine m(sim, mc);

  neural::Network net;
  const auto src = net.add_poisson("src", 512, 10.0);
  std::vector<neural::PopulationId> dests;
  for (int i = 0; i < fanout_pops; ++i) {
    dests.push_back(net.add_lif("dst" + std::to_string(i), 512));
  }
  for (const auto d : dests) {
    net.connect(src, d, neural::Connector::fixed_probability(0.05),
                neural::ValueDist::fixed(1.0), neural::ValueDist::fixed(1.0));
  }

  map::MapperConfig cfg;
  cfg.neurons_per_core = 128;
  cfg.scatter = true;  // spread slices over the machine
  const map::PlacementResult placement = map::place(net, m, cfg);
  const map::RoutingResult routing =
      map::generate_routing(net, placement, m.topology(), cfg);

  TrafficCounts counts;
  std::size_t source_slices = 0;
  for (std::size_t si = 0; si < placement.slices.size(); ++si) {
    if (placement.slices[si].pop != src) continue;
    ++source_slices;
    const auto dest_cores = map::destinations_of(net, placement, si);
    // Unicast: each destination gets its own packet over the shortest path.
    std::set<ChipCoord> dest_chips;
    for (const CoreId& c : dest_cores) {
      counts.unicast += m.topology().distance(
          placement.slices[si].core.chip, c.chip);
      dest_chips.insert(c.chip);
    }
    (void)dest_chips;
  }
  // Multicast: the tree edges, counted once per spike.
  counts.multicast = static_cast<double>(routing.stats.tree_links);
  // Broadcast: a spike floods every inter-chip link once in a spanning
  // sense; lower bound = chips-1 traversals to reach every chip.
  counts.broadcast =
      static_cast<double>(source_slices) * (m.topology().num_chips() - 1);
  return counts;
}

}  // namespace

int main(int argc, char** argv) {
  spinn::bench::Harness h("bench_e08_multicast_aer", argc, argv);
  double mc_vs_ucast_16x8 = 0.0;
  double mc_vs_bcast_16x8 = 0.0;
  h.run("fanout_sweep", [&] {
    std::printf("E8: total communication loading per spike volley — "
                "broadcast vs unicast vs multicast (§4)\n\n");
    std::printf("%-10s %-8s %14s %14s %14s %12s %12s\n", "machine", "fanout",
                "broadcast", "unicast", "multicast", "mc/ucast", "mc/bcast");
    for (const std::uint16_t dim : {8, 12, 16}) {
      for (const int fanout : {1, 2, 4, 8}) {
        const TrafficCounts c = count_traffic(dim, fanout);
        if (dim == 16 && fanout == 8) {
          mc_vs_ucast_16x8 = 100.0 * c.multicast / c.unicast;
          mc_vs_bcast_16x8 = 100.0 * c.multicast / c.broadcast;
        }
        std::printf("%2ux%-7u %-8d %14.0f %14.0f %14.0f %11.2f%% %11.2f%%\n",
                    dim, dim, fanout, c.broadcast, c.unicast, c.multicast,
                    100.0 * c.multicast / c.unicast,
                    100.0 * c.multicast / c.broadcast);
      }
    }
    std::printf("\nMulticast needs a fraction of the unicast traversals "
                "(paths shared until branch points) and a\ntiny fraction of "
                "broadcast — the multicast router is what makes large-scale "
                "AER feasible (§4).\n");
  });
  h.metric("mc_vs_unicast_traffic_16x16_fanout8_pct", mc_vs_ucast_16x8, "%");
  h.metric("mc_vs_broadcast_traffic_16x16_fanout8_pct", mc_vs_bcast_16x8,
           "%");
  return h.finish();
}
