// E3 — §2: the two cost-effectiveness metrics of many-core architectures.
//
// Paper claims: "On the first of these measures [MIPS/mm^2] embedded and
// high-end processors are roughly equal — a SpiNNaker chip with 20 ARM cores
// delivers about the same throughput as a high-end desktop processor — but
// on energy-efficiency [MIPS/W] the embedded processors win by an order of
// magnitude."
#include <cstdio>

#include "energy/cost_model.hpp"
#include "harness.hpp"

int main(int argc, char** argv) {
  using namespace spinn::energy;

  spinn::bench::Harness h("bench_e03_efficiency", argc, argv);
  double energy_efficiency_x = 0.0;
  double area_efficiency_x = 0.0;
  h.run("cost_metrics", [&] {
    std::printf("E3: MIPS/mm^2 and MIPS/W — embedded vs high-end (2010-era "
                "parts)\n\n");
    std::printf("%-38s %10s %10s %9s %12s %10s\n", "processor", "MIPS",
                "mm^2", "W", "MIPS/mm^2", "MIPS/W");

    const ProcessorSpec specs[] = {arm968_core(), spinnaker_node(),
                                   desktop_cpu()};
    for (const ProcessorSpec& p : specs) {
      std::printf("%-38s %10.0f %10.1f %9.2f %12.1f %10.0f\n", p.name,
                  p.mips, p.area_mm2, p.power_watts, mips_per_mm2(p),
                  mips_per_watt(p));
    }

    const ProcessorSpec node = spinnaker_node();
    const ProcessorSpec desktop = desktop_cpu();
    area_efficiency_x = mips_per_mm2(node) / mips_per_mm2(desktop);
    energy_efficiency_x = mips_per_watt(node) / mips_per_watt(desktop);
    std::printf("\nThroughput: 20-ARM node / desktop = x%.2f   (paper: "
                "\"about the same\")\n",
                node.mips / desktop.mips);
    std::printf("Area efficiency: node / desktop = x%.2f      (paper: "
                "\"roughly equal\")\n",
                area_efficiency_x);
    std::printf("Energy efficiency: node / desktop = x%.0f    (paper: \"an "
                "order of magnitude\")\n",
                energy_efficiency_x);
  });
  h.metric("node_vs_desktop_mips_per_mm2_x", area_efficiency_x);
  h.metric("node_vs_desktop_mips_per_watt_x", energy_efficiency_x);
  return h.finish();
}
