#!/usr/bin/env python3
"""Run every bench binary and aggregate the results into BENCH_<commit>.json.

Invoked by the `bench-all` CMake target.  Harness benches (bench/harness.hpp)
are run with `--json <tmp> --quiet`; the google-benchmark micro suite is run
with its native JSON reporter and folded into the same schema (its per-bench
real_time becomes a section, counters become metrics).  The output file is

    {"schema": 1, "commit": ..., "generated_utc": ..., "benches": [...]}

with exactly one entry per bench binary, so successive commits' files diff
cleanly and future perf PRs have a baseline to beat.
"""

import argparse
import datetime
import json
import os
import subprocess
import sys

MICRO_BENCH = "bench_micro"


def discover_harness_benches(bin_dir):
    """All built bench_* binaries except the google-benchmark micro suite.

    Discovered from the build tree rather than hand-listed so this script
    can never drift from bench/CMakeLists.txt: a bench that builds is a
    bench that gets aggregated.
    """
    names = []
    for entry in sorted(os.listdir(bin_dir)):
        path = os.path.join(bin_dir, entry)
        if (entry.startswith("bench_") and entry != MICRO_BENCH
                and os.path.isfile(path) and os.access(path, os.X_OK)):
            names.append(entry)
    return names


def git_commit(source_dir):
    try:
        out = subprocess.run(
            ["git", "-C", source_dir, "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, check=True)
        return out.stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def run_harness_bench(bin_path, json_path, reps, warmup):
    cmd = [bin_path, "--json", json_path, "--quiet",
           "--reps", str(reps), "--warmup", str(warmup)]
    subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL)
    with open(json_path, encoding="utf-8") as f:
        return json.load(f)


def run_micro_bench(bin_path, json_path):
    cmd = [bin_path,
           f"--benchmark_out={json_path}",
           "--benchmark_out_format=json",
           "--benchmark_min_time=0.05"]
    subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL)
    with open(json_path, encoding="utf-8") as f:
        raw = json.load(f)
    sections = []
    metrics = []
    for b in raw.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        ns = float(b["real_time"])  # time_unit below converts if needed
        unit = b.get("time_unit", "ns")
        scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}.get(unit, 1.0)
        ns *= scale
        sections.append({
            "name": b["name"],
            "reps": int(b.get("iterations", 0)),
            "warmup": 0,
            "ns_min": ns,
            "ns_mean": ns,
            "ns_max": ns,
        })
        if "items_per_second" in b:
            metrics.append({
                "name": f"{b['name']}/items_per_second",
                "unit": "1/s",
                "value": float(b["items_per_second"]),
            })
    return {"bench": MICRO_BENCH, "sections": sections, "metrics": metrics}


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--bin-dir", required=True,
                        help="directory holding the bench binaries")
    parser.add_argument("--out-dir", required=True,
                        help="directory to write BENCH_<commit>.json into")
    parser.add_argument("--source-dir", required=True,
                        help="repo root, used to resolve the commit hash")
    parser.add_argument("--reps", type=int, default=3)
    parser.add_argument("--warmup", type=int, default=1)
    args = parser.parse_args()

    tmp_dir = os.path.join(args.out_dir, "bench_json")
    os.makedirs(tmp_dir, exist_ok=True)

    harness_benches = discover_harness_benches(args.bin_dir)
    if not harness_benches:
        print(f"[bench-all] no bench_* binaries in {args.bin_dir}",
              file=sys.stderr)
        return 1

    benches = []
    failures = []
    for name in harness_benches:
        bin_path = os.path.join(args.bin_dir, name)
        print(f"[bench-all] {name}", flush=True)
        try:
            benches.append(run_harness_bench(
                bin_path, os.path.join(tmp_dir, name + ".json"),
                args.reps, args.warmup))
        except (subprocess.CalledProcessError, OSError, ValueError) as e:
            failures.append(f"{name}: {e}")

    micro_path = os.path.join(args.bin_dir, MICRO_BENCH)
    if os.path.exists(micro_path):
        print(f"[bench-all] {MICRO_BENCH}", flush=True)
        try:
            benches.append(run_micro_bench(
                micro_path, os.path.join(tmp_dir, MICRO_BENCH + ".json")))
        except (subprocess.CalledProcessError, OSError, ValueError) as e:
            failures.append(f"{MICRO_BENCH}: {e}")
    else:
        print(f"[bench-all] skipping {MICRO_BENCH} (not built)", flush=True)

    commit = git_commit(args.source_dir)
    out = {
        "schema": 1,
        "commit": commit,
        "generated_utc":
            datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "benches": benches,
    }
    out_path = os.path.join(args.out_dir, f"BENCH_{commit}.json")
    with open(out_path, "w", encoding="utf-8") as f:
        json.dump(out, f, indent=2)
        f.write("\n")
    print(f"[bench-all] wrote {out_path} ({len(benches)} benches)")

    if failures:
        for msg in failures:
            print(f"[bench-all] FAILED {msg}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
