// Ablation A2 — virtualised topology (§3.2): "In principle any neuron can
// be mapped onto any processor.  In practice it is likely to be beneficial
// to map neurons that are physically close in biology to proximal locations
// in SpiNNaker as this will minimize routing costs, but it is not necessary
// to do so."
//
// We map the same layered network twice — packed (proximal) and scattered
// (deliberately spread) — and compare routing cost and live fabric load.
// Both are *correct*; the packed mapping is just cheaper.  That gap is the
// quantitative content of "beneficial but not necessary".
#include <cstdio>
#include <string>

#include "core/system.hpp"
#include "harness.hpp"

namespace {

using namespace spinn;

struct Outcome {
  std::uint64_t tree_links = 0;
  std::uint64_t entries = 0;
  std::uint64_t inter_chip_packets = 0;
  std::uint64_t delivered_local = 0;
  std::uint64_t dropped = 0;
  double fabric_mj = 0.0;
  std::size_t spikes = 0;
};

Outcome run(bool scatter) {
  SystemConfig cfg;
  cfg.machine.width = 6;
  cfg.machine.height = 6;
  cfg.machine.chip.num_cores = 4;
  cfg.machine.chip.clock_drift_ppm_sigma = 0.0;
  cfg.mapper.neurons_per_core = 128;
  cfg.mapper.scatter = scatter;
  System sys(cfg);

  neural::Network net;
  const auto input = net.add_poisson("input", 256, 30.0);
  const auto l1 = net.add_lif("l1", 512);
  const auto l2 = net.add_lif("l2", 512);
  const auto out = net.add_lif("out", 128);
  net.connect(input, l1, neural::Connector::fixed_probability(0.05),
              neural::ValueDist::fixed(3.0), neural::ValueDist::fixed(1.0));
  net.connect(l1, l2, neural::Connector::fixed_probability(0.03),
              neural::ValueDist::fixed(2.0), neural::ValueDist::fixed(2.0));
  net.connect(l2, out, neural::Connector::fixed_probability(0.05),
              neural::ValueDist::fixed(2.0), neural::ValueDist::fixed(1.0));

  const auto report = sys.load(net);
  if (!report.ok) return Outcome{};
  sys.run(200 * kMillisecond);

  Outcome o;
  o.tree_links = report.routing.tree_links;
  o.entries = report.routing.entries_total;
  const auto totals = sys.fabric_totals();
  o.inter_chip_packets = totals.forwarded;
  o.delivered_local = totals.delivered_local;
  o.dropped = totals.dropped;
  o.fabric_mj = sys.energy().fabric_j * 1e3;
  o.spikes = sys.spikes().count();
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  spinn::bench::Harness h("bench_a02_placement", argc, argv);
  Outcome packed;
  Outcome scattered;
  h.run("packed", [&] { packed = run(false); });
  h.run("scattered", [&] { scattered = run(true); });

  std::printf("A2: placement ablation — proximal (packed) vs scattered "
              "mapping of the same 4-layer network\n    on a 6x6 machine "
              "(§3.2 virtualised topology)\n\n");
  std::printf("%-26s %14s %14s %10s\n", "metric", "packed", "scattered",
              "ratio");
  auto row = [](const char* name, double a, double b) {
    std::printf("%-26s %14.0f %14.0f %9.2fx\n", name, a, b,
                a > 0 ? b / a : 0.0);
  };
  row("multicast tree links", packed.tree_links, scattered.tree_links);
  row("routing entries", packed.entries, scattered.entries);
  row("inter-chip packet hops", packed.inter_chip_packets,
      scattered.inter_chip_packets);
  row("local deliveries", packed.delivered_local, scattered.delivered_local);
  row("packets dropped", packed.dropped, scattered.dropped);
  std::printf("%-26s %14.4f %14.4f %9.2fx\n", "fabric energy (mJ)",
              packed.fabric_mj, scattered.fabric_mj,
              packed.fabric_mj > 0 ? scattered.fabric_mj / packed.fabric_mj
                                   : 0.0);

  std::printf("\nBoth mappings run the same network (%zu vs %zu spikes — "
              "equal up to timer-phase jitter, since\nchips have no common "
              "clock); scattering only raises the *cost*: more tree links, "
              "more inter-chip\nhops, more fabric energy.  That is §3.2: "
              "physical and logical connectivity are decoupled;\nproximity "
              "is an optimisation, not a correctness requirement.\n",
              packed.spikes, scattered.spikes);
  h.metric("scatter_vs_packed_hops_x",
           packed.inter_chip_packets > 0
               ? static_cast<double>(scattered.inter_chip_packets) /
                     static_cast<double>(packed.inter_chip_packets)
               : 0.0);
  h.metric("scatter_vs_packed_fabric_energy_x",
           packed.fabric_mj > 0 ? scattered.fabric_mj / packed.fabric_mj
                                : 0.0);
  return h.finish();
}
