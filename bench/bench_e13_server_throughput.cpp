// E13 — session-server throughput: the first trajectory point for the
// serving direction.
//
// The ROADMAP's north star is a front-end taking "heavy traffic from
// millions of users"; what that costs today is exactly what this bench
// records: sessions/second through the full lifecycle (open -> build ->
// run -> drain -> close) at increasing concurrency, the engine pool's
// reuse rate (how much machine bring-up the pool amortises away), and
// time-to-first-spike — the latency a polling client sees between opening a
// session and receiving its first streamed event.
//
// Each session is a 2x2-chip machine running the "chain" app for 10 ms of
// biological time; the load is deliberately small so the bench measures the
// serving overhead (scheduling, slicing, pooling, drains), not the neural
// kernel (bench_e11/e12 cover that).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "core/spinnaker.hpp"
#include "harness.hpp"
#include "sim/stats.hpp"

namespace {

using namespace spinn;

constexpr TimeNs kBioPerSession = 10 * kMillisecond;
constexpr int kSessionsPerRound = 16;

using spinn::sim::percentile;

/// Wall-clock of one server API call, appended to `lat_us`.
template <class F>
auto timed_us(std::vector<double>& lat_us, F&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  auto result = fn();
  lat_us.push_back(std::chrono::duration<double, std::micro>(
                       std::chrono::steady_clock::now() - t0)
                       .count());
  return result;
}

server::SessionSpec session_spec(std::uint64_t seed, bool sharded) {
  server::SessionSpec spec;
  spec.app = "chain";
  spec.seed = seed;
  if (sharded) {
    spec.engine = sim::EngineKind::Sharded;
    spec.shards = 2;
    spec.threads = 2;
  }
  return spec;
}

/// Run kSessionsPerRound sessions through a server, at most `concurrency`
/// in flight, recording each API call's latency into `lat_us`.  Returns
/// total spikes drained (sanity that sessions ran).
std::size_t serve_round(server::SessionServer& srv, std::size_t concurrency,
                        bool sharded, std::vector<double>& lat_us) {
  std::size_t spikes = 0;
  std::vector<server::SessionId> inflight;
  std::uint64_t seed = 1;
  int opened = 0;
  while (opened < kSessionsPerRound || !inflight.empty()) {
    while (opened < kSessionsPerRound && inflight.size() < concurrency) {
      const auto id = timed_us(
          lat_us, [&] { return srv.open(session_spec(seed++, sharded)); });
      if (id == server::kInvalidSession) break;
      timed_us(lat_us, [&] { return srv.run(id, kBioPerSession); });
      inflight.push_back(id);
      ++opened;
    }
    if (inflight.empty()) break;  // every open rejected: nothing to wait on
    // Complete the oldest in-flight session (FIFO keeps all lanes busy).
    const auto id = inflight.front();
    inflight.erase(inflight.begin());
    srv.wait(id);  // untimed: wait is dominated by simulation, not serving
    spikes += timed_us(lat_us, [&] { return srv.drain(id).size(); });
    timed_us(lat_us, [&] { return srv.close(id); });
  }
  return spikes;
}

double measure_ttfs_ms(server::SessionServer& srv, std::uint64_t seed) {
  using clock = std::chrono::steady_clock;
  const auto t0 = clock::now();
  const auto id = srv.open(session_spec(seed, /*sharded=*/false));
  if (id == server::kInvalidSession) return -1.0;
  srv.run(id, kBioPerSession);
  // Poll exactly like a streaming client would.
  for (;;) {
    if (!srv.drain(id).empty()) break;
    if (srv.status(id).bio_now >= kBioPerSession) break;  // no spikes at all
    std::this_thread::yield();
  }
  const double ms = std::chrono::duration<double, std::milli>(clock::now() -
                                                              t0)
                        .count();
  srv.wait(id);
  srv.close(id);
  return ms;
}

}  // namespace

int main(int argc, char** argv) {
  spinn::bench::Harness h("bench_e13_server_throughput", argc, argv);
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("E13: session-server throughput, %d sessions/round of %.0f ms "
              "bio each (%u hw threads)\n\n",
              kSessionsPerRound,
              static_cast<double>(kBioPerSession) / kMillisecond, hw);

  server::ServerConfig cfg;
  cfg.workers = 2;
  cfg.max_sessions = 16;
  server::SessionServer srv(cfg);

  std::printf("%-14s %10s %12s %14s\n", "section", "sessions", "time(ms)",
              "sessions/s");
  double sessions_per_sec_c1 = 0.0;
  double sessions_per_sec_c8 = 0.0;
  std::size_t spikes = 0;
  std::vector<double> req_lat_us;
  std::vector<double> warmup_lat_us;  // discarded: cold-start samples
  // Warmup repetitions record into the throwaway vector, so the published
  // per-request percentiles are steady-state serving latency only.
  const auto lat_sink = [&]() -> std::vector<double>& {
    return h.warming_up() ? warmup_lat_us : req_lat_us;
  };
  for (const std::size_t concurrency : {1u, 2u, 4u, 8u}) {
    char section[32];
    std::snprintf(section, sizeof section, "serve_c%zu", concurrency);
    h.run(section, [&] {
      spikes = serve_round(srv, concurrency, false, lat_sink());
    });
    const double ms = h.section_ms(section);
    const double rate = ms > 0.0 ? 1e3 * kSessionsPerRound / ms : 0.0;
    if (concurrency == 1) sessions_per_sec_c1 = rate;
    if (concurrency == 8) sessions_per_sec_c8 = rate;
    std::printf("%-14s %10d %12.1f %14.0f\n", section, kSessionsPerRound, ms,
                rate);
    if (spikes == 0) std::printf("  WARNING: round produced no spikes\n");
  }

  // Mixed-engine round: half the value of the pool is that sharded engines
  // (worker pools and all) get recycled too.
  h.run("serve_c4_sharded",
        [&] { spikes = serve_round(srv, 4, /*sharded=*/true, lat_sink()); });
  std::printf("%-14s %10d %12.1f %14.0f\n", "serve_c4_shard",
              kSessionsPerRound, h.section_ms("serve_c4_sharded"),
              h.section_ms("serve_c4_sharded") > 0.0
                  ? 1e3 * kSessionsPerRound / h.section_ms("serve_c4_sharded")
                  : 0.0);

  // Time-to-first-spike, measured outside the harness sections (it is a
  // latency, not a section time).  Enough probes for a meaningful tail:
  // with 20 samples p99 interpolates between the two slowest.
  std::vector<double> ttfs;
  for (std::uint64_t i = 0; i < 20; ++i) {
    ttfs.push_back(measure_ttfs_ms(srv, 1000 + i));
  }
  const double ttfs_p50 = percentile(ttfs, 0.50);
  const double ttfs_p99 = percentile(ttfs, 0.99);
  std::printf("\ntime-to-first-spike (open -> first drained event): "
              "p50=%.2f ms p99=%.2f ms over %zu probes\n",
              ttfs_p50, ttfs_p99, ttfs.size());
  const double req_p50 = percentile(req_lat_us, 0.50);
  const double req_p99 = percentile(req_lat_us, 0.99);
  std::printf("per-request serving latency (open/run/drain/close): "
              "p50=%.1f us p99=%.1f us over %zu calls\n",
              req_p50, req_p99, req_lat_us.size());

  const auto stats = srv.stats();
  const double reuse =
      stats.engines.created + stats.engines.reused > 0
          ? static_cast<double>(stats.engines.reused) /
                static_cast<double>(stats.engines.created +
                                    stats.engines.reused)
          : 0.0;
  std::printf("engine pool: %llu created, %llu reused (%.0f%% of "
              "acquisitions served from the pool)\n",
              static_cast<unsigned long long>(stats.engines.created),
              static_cast<unsigned long long>(stats.engines.reused),
              1e2 * reuse);

  h.metric("hw_threads", static_cast<double>(hw), "threads");
  h.metric("sessions_per_sec_c1", sessions_per_sec_c1, "sessions/s");
  h.metric("sessions_per_sec_c8", sessions_per_sec_c8, "sessions/s");
  h.metric("ttfs_ms", ttfs_p50, "ms");  // kept: the pre-PR4 trajectory name
  h.metric("ttfs_p50_ms", ttfs_p50, "ms");
  h.metric("ttfs_p99_ms", ttfs_p99, "ms");
  h.metric("req_latency_p50_us", req_p50, "us");
  h.metric("req_latency_p99_us", req_p99, "us");
  h.metric("engine_reuse_fraction", reuse, "");
  h.metric("bio_ms_per_session",
           static_cast<double>(kBioPerSession) / kMillisecond, "ms");
  return h.finish();
}
