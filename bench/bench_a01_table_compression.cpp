// Ablation A1 — why the router has default routing and why the mapper
// minimises tables: the multicast CAM has only 1024 entries (§4, [7]).
//
// We scale a multi-population network up on a 12x12 machine and count
// routing entries per chip under four mapper configurations.  Without
// default-route compression, straight-through chips each burn an entry per
// slice and the CAM overflows at a fraction of the compressed capacity.
#include <cstdio>
#include <string>

#include "harness.hpp"
#include "map/routing_gen.hpp"
#include "mesh/machine.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace spinn;

struct Row {
  std::uint64_t total = 0;
  std::size_t max_per_chip = 0;
  std::uint64_t saved = 0;
  bool overflow = false;
};

Row measure(int populations, bool compress, bool minimize) {
  sim::Simulator sim(9);
  mesh::MachineConfig mc;
  mc.width = 12;
  mc.height = 12;
  mc.chip.num_cores = 3;
  mesh::Machine m(sim, mc);

  neural::Network net;
  std::vector<neural::PopulationId> pops;
  for (int i = 0; i < populations; ++i) {
    pops.push_back(net.add_lif("p" + std::to_string(i), 256));
  }
  // A ring of projections plus some chords: every population both sends
  // and receives, paths cross the machine.
  for (int i = 0; i < populations; ++i) {
    net.connect(pops[i], pops[(i + 1) % populations],
                neural::Connector::fixed_probability(0.02),
                neural::ValueDist::fixed(1.0), neural::ValueDist::fixed(1.0));
    net.connect(pops[i], pops[(i + populations / 3 + 1) % populations],
                neural::Connector::fixed_probability(0.02),
                neural::ValueDist::fixed(1.0), neural::ValueDist::fixed(1.0));
  }

  map::MapperConfig cfg;
  cfg.neurons_per_core = 128;
  cfg.scatter = true;
  cfg.default_route_compression = compress;
  cfg.minimize_tables = minimize;
  const map::PlacementResult placement = map::place(net, m, cfg);
  if (!placement.fits) return Row{};
  const map::RoutingResult routing =
      map::generate_routing(net, placement, m.topology(), cfg);
  Row row;
  row.total = routing.stats.entries_total;
  row.max_per_chip = routing.stats.max_entries_per_chip;
  row.saved = routing.stats.entries_saved_by_default_route;
  row.overflow =
      routing.stats.max_entries_per_chip > router::MulticastTable::kCapacity;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  spinn::bench::Harness h("bench_a01_table_compression", argc, argv);
  double naive_max_per_chip = 0.0;
  double shipped_max_per_chip = 0.0;
  h.run("mapper_sweep", [&] {
    std::printf("A1: routing-table pressure vs mapper features (12x12 "
                "machine, 1024-entry CAM per router)\n\n");
    std::printf("%-14s %-24s %12s %14s %14s %10s\n", "populations",
                "configuration", "entries", "max per chip", "saved by DR",
                "fits CAM?");
    for (const int pops : {12, 24, 48, 96}) {
      struct Config {
        const char* name;
        bool compress;
        bool minimize;
      };
      const Config configs[] = {
          {"naive (no DR, no min)", false, false},
          {"default-route only", true, false},
          {"minimise only", false, true},
          {"both (shipped default)", true, true},
      };
      for (const Config& c : configs) {
        const Row r = measure(pops, c.compress, c.minimize);
        if (pops == 96 && !c.compress && !c.minimize) {
          naive_max_per_chip = static_cast<double>(r.max_per_chip);
        }
        if (pops == 96 && c.compress && c.minimize) {
          shipped_max_per_chip = static_cast<double>(r.max_per_chip);
        }
        std::printf("%-14d %-24s %12llu %14zu %14llu %10s\n", pops, c.name,
                    static_cast<unsigned long long>(r.total), r.max_per_chip,
                    static_cast<unsigned long long>(r.saved),
                    r.overflow ? "NO" : "yes");
      }
      std::printf("\n");
    }
    std::printf("Default routing elides entries on straight-through chips; "
                "key/mask minimisation folds sibling\nslices with identical "
                "routes.  Together they are what lets a 1024-entry CAM route "
                "thousands of\npopulation slices (§4, §5.3).\n");
  });
  h.metric("naive_max_entries_per_chip_96pop", naive_max_per_chip, "entries");
  h.metric("shipped_max_entries_per_chip_96pop", shipped_max_per_chip,
           "entries");
  return h.finish();
}
