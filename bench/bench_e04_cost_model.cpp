// E4 — §3.3: energy frugality and the ownership-cost argument.
//
// Paper claims: "A PC costs around $1,000 and consumes 300W.  A Watt costs
// $1/year.  So the energy cost of a PC equals the purchase cost after a
// little more than three years... At current prices the purchase and energy
// costs are roughly equal"; and a SpiNNaker node gives "a similar
// performance to a PC ... for a component cost of around $20 and a power
// consumption under 1 Watt."
#include <cstdio>

#include "energy/cost_model.hpp"
#include "harness.hpp"

int main(int argc, char** argv) {
  using namespace spinn::energy;

  spinn::bench::Harness h("bench_e04_cost_model", argc, argv);
  double crossover_years = 0.0;
  double ownership_ratio_5y = 0.0;
  h.run("ownership_sweep", [&] {
    const OwnershipCost pc = pc_ownership();
    const OwnershipCost node = spinnaker_node_ownership();

    std::printf("E4: ownership cost — PC vs SpiNNaker node ($1/W/year)\n\n");
    std::printf("%-8s %16s %16s %18s\n", "years", "PC total ($)",
                "node total ($)", "PC energy share");
    for (int years = 0; years <= 6; ++years) {
      const double pc_total = pc.total(years);
      const double energy_share =
          (pc_total - pc.purchase_dollars) / pc_total * 100.0;
      std::printf("%-8d %16.0f %16.1f %17.0f%%\n", years, pc_total,
                  node.total(years), energy_share);
    }

    crossover_years = pc.energy_crossover_years();
    ownership_ratio_5y = pc.total(5.0) / node.total(5.0);
    std::printf("\nPC energy-cost crossover: %.2f years (paper: \"a little "
                "more than three years\")\n",
                crossover_years);
    std::printf("Node purchase: $%.0f (paper: ~$20), node power: %.1f W "
                "(paper: <1 W)\n",
                node.purchase_dollars, node.power_watts);
    std::printf("5-year ownership ratio, PC/node: x%.0f\n",
                ownership_ratio_5y);
  });
  h.metric("pc_energy_crossover_years", crossover_years, "years");
  h.metric("pc_vs_node_5y_ownership_x", ownership_ratio_5y);
  return h.finish();
}
