// E4 — §3.3: energy frugality and the ownership-cost argument.
//
// Paper claims: "A PC costs around $1,000 and consumes 300W.  A Watt costs
// $1/year.  So the energy cost of a PC equals the purchase cost after a
// little more than three years... At current prices the purchase and energy
// costs are roughly equal"; and a SpiNNaker node gives "a similar
// performance to a PC ... for a component cost of around $20 and a power
// consumption under 1 Watt."
#include <cstdio>

#include "energy/cost_model.hpp"

int main() {
  using namespace spinn::energy;

  const OwnershipCost pc = pc_ownership();
  const OwnershipCost node = spinnaker_node_ownership();

  std::printf("E4: ownership cost — PC vs SpiNNaker node ($1/W/year)\n\n");
  std::printf("%-8s %16s %16s %18s\n", "years", "PC total ($)",
              "node total ($)", "PC energy share");
  for (int years = 0; years <= 6; ++years) {
    const double pc_total = pc.total(years);
    const double energy_share =
        (pc_total - pc.purchase_dollars) / pc_total * 100.0;
    std::printf("%-8d %16.0f %16.1f %17.0f%%\n", years, pc_total,
                node.total(years), energy_share);
  }

  std::printf("\nPC energy-cost crossover: %.2f years (paper: \"a little "
              "more than three years\")\n",
              pc.energy_crossover_years());
  std::printf("Node purchase: $%.0f (paper: ~$20), node power: %.1f W "
              "(paper: <1 W)\n",
              node.purchase_dollars, node.power_watts);
  std::printf("5-year ownership ratio, PC/node: x%.0f\n",
              pc.total(5.0) / node.total(5.0));
  return 0;
}
