// E10 — §5.4: biological concurrency — retina receptive fields, rank-order
// codes and graceful degradation under neuron loss.
//
// Paper claims: "If a neuron fails it will cease to generate output and
// also cease to generate lateral inhibition, so a near-neighbour with a
// similar receptive field will take over and very little information will
// be lost.  This may go some way towards explaining the remarkable
// fault-tolerance of the brain, which continues to function normally
// despite the loss of around one neuron per second throughout adult life."
// And (with ref [20]) that the N active neurons convey information in the
// order in which they fire.
#include <cstdio>

#include "common/rng.hpp"
#include "harness.hpp"
#include "neural/retina.hpp"

namespace {

using namespace spinn;
using namespace spinn::neural;

}  // namespace

int main(int argc, char** argv) {
  spinn::bench::Harness h("bench_e10_neuron_loss", argc, argv);
  double retained_at_30pct = 0.0;
  h.run("lesion_sweep", [&] {
    std::printf("E10: retina rank-order coding under neuron loss "
                "(§5.4)\n\n");

    const int image_size = 32;
    RetinaConfig cfg;
    const Image stimulus = make_gaussian_blob(image_size, 16.0, 14.0, 3.5);

    // Intact baseline.
    Retina baseline(image_size, cfg);
    const auto intact_volley = baseline.encode(stimulus);
    const double intact_corr = image_correlation(
        stimulus, baseline.decode(intact_volley, 100000));

    std::printf("Ganglion sheet: %zu cells (ON+OFF, %zu scales); intact "
                "volley %zu spikes; intact reconstruction r=%.3f\n\n",
                baseline.num_ganglia(), cfg.scales.size(),
                intact_volley.size(), intact_corr);

    std::printf("%-12s %10s %16s %18s %20s\n", "loss", "spikes",
                "reconstruction", "retained info", "rank-order overlap");
    std::printf("%-12s %10s %16s %18s %20s\n", "(%% cells)", "", "(corr r)",
                "(%% of intact r)", "(vs intact, d=50)");

    Rng rng(2026);
    for (const double loss : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6}) {
      // Average over lesion draws.
      const int draws = 5;
      double corr_sum = 0.0, spikes_sum = 0.0, overlap_sum = 0.0;
      for (int d = 0; d < draws; ++d) {
        Retina lesioned(image_size, cfg);
        lesioned.kill_fraction(loss, rng);
        const auto volley = lesioned.encode(stimulus);
        corr_sum += image_correlation(stimulus,
                                      lesioned.decode(volley, 100000));
        spikes_sum += static_cast<double>(volley.size());
        overlap_sum += rank_order_similarity(intact_volley, volley, 50);
      }
      const double corr = corr_sum / draws;
      const double retained_pct = 100.0 * corr / intact_corr;
      if (loss == 0.3) retained_at_30pct = retained_pct;
      std::printf("%-12.0f %10.0f %16.3f %17.1f%% %20.3f\n", loss * 100.0,
                  spikes_sum / draws, corr, retained_pct,
                  overlap_sum / draws);
    }

    // The takeover mechanism: with inhibition, killing a cell frees its
    // neighbours to fire.
    std::printf("\nTakeover mechanism: dead cells stop inhibiting, so "
                "overlapping neighbours with similar receptive\nfields fire "
                "in their place (§5.4):\n");
    Retina demo(image_size, cfg);
    const auto before = demo.encode(stimulus);
    Rng krng(7);
    demo.kill_fraction(0.3, krng);
    const auto after = demo.encode(stimulus);
    int newly_recruited = 0;
    for (const RetinaSpike& s : after) {
      bool was_active = false;
      for (const RetinaSpike& t : before) {
        if (t.ganglion == s.ganglion) was_active = true;
      }
      if (!was_active) ++newly_recruited;
    }
    std::printf("  30%% lesion: %zu -> %zu spikes, %d previously-silent "
                "cells recruited by disinhibition.\n",
                before.size(), after.size(), newly_recruited);
    std::printf("\nDegradation is graceful (no cliff), matching the paper's "
                "fault-tolerance argument.\n");
  });
  h.metric("retained_info_at_30pct_loss_pct", retained_at_30pct, "%");
  return h.finish();
}
