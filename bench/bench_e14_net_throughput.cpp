// E14 — socket-transport throughput: connections × pipeline-depth sweep.
//
// PR 3's bench_e13 measured the session subsystem through the embedded
// API; this bench puts the new src/net transport in front of the same
// server and asks what serving costs once requests cross a socket: batch
// frames (one round-trip per session lifecycle), pipelining (several
// lifecycles in flight per connection), many concurrent connections
// multiplexed by one reactor thread, and the same load sharded across
// four reactors (NetConfig::reactors).  The headline comparison is
// single-stream embedded serving (the e13 baseline, reproduced here on
// an identically-configured PR 3 server in this process) vs
// batched/pipelined socket serving — the transport must at least keep up
// with the stdio-era numbers for the "heavy traffic" story to hold
// (ISSUE 4 acceptance).  Time-to-first-spike is measured as a polling
// socket client sees it, p50/p99.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <limits>
#include <memory>
#include <thread>
#include <vector>

#include "common/thread_annotations.hpp"
#include "core/spinnaker.hpp"
#include "harness.hpp"
#include "sim/stats.hpp"

namespace {

using namespace spinn;

constexpr TimeNs kBioPerSession = 10 * kMillisecond;
constexpr int kSessionsPerRound = 64;
/// Sessions are ~tens of microseconds of simulation each, so a single
/// round is mostly scheduler noise; every section publishes the min of
/// this many repetitions.
constexpr int kMinReps = 3;

using spinn::sim::percentile;

std::string session_batch(std::uint64_t seed) {
  return "open app=chain seed=" + std::to_string(seed) +
         "\nrun $ " +
         std::to_string(static_cast<double>(kBioPerSession) / kMillisecond) +
         "\nwait $\ndrain $\nclose $";
}

/// The client-described network for the wire-submitted-net column: a
/// chain-like stimulus plus background noise into a LIF sheet — enough
/// populations/projections that parsing and compiling are visible, small
/// enough that a lifecycle stays milliseconds.
const std::vector<std::string>& custom_net_lines() {
  static const std::vector<std::string> lines = [] {
    net::NetBuilder b;
    b.spike_source("stim", {{1, 5}, {3}});
    b.poisson("bg", 24, 30.0);
    b.lif("cells", 48);
    b.project("stim", "cells", neural::Connector::all_to_all(),
              neural::ValueDist::fixed(15.0), neural::ValueDist::fixed(1.0));
    b.project("bg", "cells", neural::Connector::fixed_probability(0.25),
              neural::ValueDist::uniform(2.0, 6.0),
              neural::ValueDist::fixed(1.0));
    return b.lines();
  }();
  return lines;
}

/// A whole wire-submitted-net lifecycle in one frame: describe the net,
/// open it (`app=@`), run, wait, drain, close — submission + compile +
/// serving, the general-purpose analogue of session_batch().
std::string custom_net_batch(std::uint64_t seed) {
  std::string frame;
  for (const std::string& line : custom_net_lines()) {
    frame += line;
    frame += '\n';
  }
  frame += "open app=@ seed=" + std::to_string(seed) + "\nrun $ " +
           std::to_string(static_cast<double>(kBioPerSession) /
                          kMillisecond) +
           "\nwait $\ndrain $\nclose $";
  return frame;
}

using BatchFn = std::string (*)(std::uint64_t);

/// One connection working through `quota` session lifecycles with up to
/// `depth` batch frames in flight.  Returns spikes drained (sanity).
std::size_t drive_connection(net::Client& client, std::uint64_t seed_base,
                             int quota, int depth, BatchFn batch_fn) {
  std::size_t spikes = 0;
  int sent = 0;
  int received = 0;
  while (received < quota) {
    while (sent < quota && sent - received < depth) {
      if (!client.send(
              batch_fn(seed_base + static_cast<std::uint64_t>(sent)))) {
        return spikes;
      }
      ++sent;
    }
    const auto blocks = net::Client::split_response(client.receive());
    // The drain block is second-to-last in both shapes (5 blocks for an
    // app batch, 6 when a net block leads).
    if (blocks.size() >= 2) {
      std::vector<neural::SpikeRecorder::Event> events;
      if (net::parse_spikes(blocks[blocks.size() - 2], &events)) {
        spikes += events.size();
      }
    }
    ++received;
  }
  return spikes;
}

/// A persistent pool of client threads, one connection each, parked on a
/// condition variable between rounds — so a timed round measures serving,
/// not pthread_create/connect.
class ClientPool {
 public:
  ClientPool(std::uint16_t port, int size) {
    clients_.reserve(static_cast<std::size_t>(size));
    done_.assign(static_cast<std::size_t>(size), true);
    spikes_.assign(static_cast<std::size_t>(size), 0);
    for (int i = 0; i < size; ++i) {
      clients_.push_back(std::make_unique<net::Client>(port));
    }
    for (int i = 0; i < size; ++i) {
      threads_.emplace_back([this, i] { worker(i); });
    }
  }

  ~ClientPool() {
    {
      spinn::MutexLock lk(&mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& t : threads_) t.join();
  }

  /// Run kSessionsPerRound lifecycles over the first `connections`
  /// clients, each pipelining `depth` batches of `batch_fn` (default: the
  /// built-in chain app).  Returns spikes drained.
  std::size_t round(int connections, int depth,
                    BatchFn batch_fn = session_batch) {
    {
      spinn::MutexLock lk(&mu_);
      quota_ = kSessionsPerRound / connections;
      depth_ = depth;
      batch_fn_ = batch_fn;
      ++generation_;
      for (int i = 0; i < connections; ++i) {
        done_[static_cast<std::size_t>(i)] = false;
      }
      active_ = connections;
    }
    cv_.notify_all();
    spinn::MutexLock lk(&mu_);
    while (active_ != 0) done_cv_.wait(lk);
    std::size_t total = 0;
    for (int i = 0; i < connections; ++i) {
      total += spikes_[static_cast<std::size_t>(i)];
    }
    return total;
  }

 private:
  void worker(int index) {
    std::uint64_t seen = 0;
    for (;;) {
      int quota = 0;
      int depth = 0;
      BatchFn batch_fn = session_batch;
      {
        spinn::MutexLock lk(&mu_);
        while (!stop_ && (generation_ == seen ||
                          done_[static_cast<std::size_t>(index)])) {
          cv_.wait(lk);
        }
        if (stop_) return;
        seen = generation_;
        quota = quota_;
        depth = depth_;
        batch_fn = batch_fn_;
      }
      const std::size_t result = drive_connection(
          *clients_[static_cast<std::size_t>(index)],
          static_cast<std::uint64_t>(1 + index * quota), quota, depth,
          batch_fn);
      {
        spinn::MutexLock lk(&mu_);
        spikes_[static_cast<std::size_t>(index)] = result;
        done_[static_cast<std::size_t>(index)] = true;
        --active_;
      }
      done_cv_.notify_one();
    }
  }

  std::vector<std::unique_ptr<net::Client>> clients_;
  std::vector<std::thread> threads_;
  spinn::Mutex mu_;
  spinn::CondVar cv_;
  spinn::CondVar done_cv_;
  std::vector<bool> done_ SPINN_GUARDED_BY(mu_);
  std::vector<std::size_t> spikes_ SPINN_GUARDED_BY(mu_);
  std::uint64_t generation_ SPINN_GUARDED_BY(mu_) = 0;
  int quota_ SPINN_GUARDED_BY(mu_) = 0;
  int depth_ SPINN_GUARDED_BY(mu_) = 0;
  BatchFn batch_fn_ SPINN_GUARDED_BY(mu_) = session_batch;
  int active_ SPINN_GUARDED_BY(mu_) = 0;
  bool stop_ SPINN_GUARDED_BY(mu_) = false;
};

/// Submission + compile latency of a wire-described net: one batch frame
/// carrying the net block, `open app=@` and a `wait $` that resolves once
/// the build (parse, validate, place, route, load) finished on the server.
double measure_submit_compile_ms(std::uint16_t port, std::uint64_t seed) {
  using clock = std::chrono::steady_clock;
  net::Client client(port);
  std::vector<std::string> lines = custom_net_lines();
  lines.push_back("open app=@ seed=" + std::to_string(seed));
  lines.push_back("wait $");
  lines.push_back("close $");
  const auto t0 = clock::now();
  const auto blocks = net::Client::split_response(client.batch(lines));
  const double ms =
      std::chrono::duration<double, std::milli>(clock::now() - t0).count();
  return blocks.size() == 4 && blocks.back() == "ok" ? ms : -1.0;
}

/// The e13 baseline: embedded API, one session at a time (the stdio-era
/// serving model — one client, one request in flight).
std::size_t embedded_round(server::SessionServer& srv) {
  std::size_t spikes = 0;
  for (std::uint64_t i = 0; i < kSessionsPerRound; ++i) {
    server::SessionSpec spec;
    spec.app = "chain";
    spec.seed = 500 + i;
    const auto id = srv.open(spec);
    if (id == server::kInvalidSession) continue;
    srv.run(id, kBioPerSession);
    srv.wait(id);
    spikes += srv.drain(id).size();
    srv.close(id);
  }
  return spikes;
}

/// Time from sending `open+run` to receiving the first drained spike, as a
/// polling socket client.
double measure_ttfs_ms(std::uint16_t port, std::uint64_t seed) {
  using clock = std::chrono::steady_clock;
  net::Client client(port);
  const auto t0 = clock::now();
  const auto blocks = net::Client::split_response(client.batch(
      {"open app=chain seed=" + std::to_string(seed), "run $ 10"}));
  server::SessionId id = server::kInvalidSession;
  if (blocks.empty() || !net::parse_open_id(blocks[0], &id)) return -1.0;
  const std::string sid = std::to_string(id);
  std::vector<neural::SpikeRecorder::Event> events;
  for (;;) {
    const std::string drained = client.request("drain " + sid);
    if (drained.empty()) return -1.0;  // transport lost: discard the probe
    if (net::parse_spikes(drained, &events) && !events.empty()) break;
    const std::string st = client.request("status " + sid);
    if (st.empty()) return -1.0;
    if (st.find("state=ready") != std::string::npos &&
        st.find(" t=" + std::to_string(kBioPerSession) + " ") !=
            std::string::npos) {
      break;  // ran dry without a spike (never for chain, but bounded)
    }
  }
  const double ms =
      std::chrono::duration<double, std::milli>(clock::now() - t0).count();
  client.batch({"wait " + sid, "close " + sid});
  return ms;
}

}  // namespace

int main(int argc, char** argv) {
  spinn::bench::Harness h("bench_e14_net_throughput", argc, argv);
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("E14: socket-transport throughput, %d sessions/round of "
              "%.0f ms bio each (%u hw threads)\n\n",
              kSessionsPerRound,
              static_cast<double>(kBioPerSession) / kMillisecond, hw);

  // The baseline: a PR 3-shaped SessionServer (bench_e13's exact config —
  // 2 workers, 16 slots, no transport) driven one session at a time.
  server::ServerConfig e13_cfg;
  e13_cfg.workers = 2;
  e13_cfg.max_sessions = 16;
  server::SessionServer baseline(e13_cfg);

  // The system under test: single-threaded serving — the reactor drives
  // the scheduler itself, so the socket path pays no cross-thread handoff
  // (the winning shape on few-core hosts; see NetConfig::reactor_drives).
  // The coarse slice drops per-quantum scheduling overhead; fairness
  // across connections comes from the reactor's drive budget rather than
  // sub-session slicing, so the worker model's 1 ms default is not needed
  // here.
  net::NetConfig cfg;
  cfg.session.workers = 0;
  cfg.reactor_drives = true;
  cfg.session.slice = kBioPerSession;
  cfg.session.max_sessions = 64;  // 8 conns × depth 4 all in flight
  net::NetServer srv(cfg);

  ClientPool pool(srv.port(), 8);

  // Warm both paths before timing anything: first-touch costs (engine
  // construction, page faults, the reactor's first accepts) hit whichever
  // section runs first otherwise.
  embedded_round(baseline);
  pool.round(2, 2);

  std::size_t spikes = 0;
  h.run("embedded_c1", [&] { spikes = embedded_round(baseline); },
        kMinReps);
  const double base_ms = h.section_ms("embedded_c1");
  const double base_rate =
      base_ms > 0.0 ? 1e3 * kSessionsPerRound / base_ms : 0.0;
  std::printf("%-16s %10s %12s %14s\n", "section", "sessions", "time(ms)",
              "sessions/s");
  std::printf("%-16s %10d %12.1f %14.0f  (bench_e13 baseline)\n",
              "embedded_c1", kSessionsPerRound, base_ms, base_rate);

  double best_rate = 0.0;
  double rate_c8d4 = 0.0;
  for (const int connections : {1, 2, 4, 8}) {
    for (int depth : {1, 4, 16}) {
      // Depth beyond a connection's share of the round is meaningless.
      if (depth > kSessionsPerRound / connections) {
        if (depth != 4) continue;  // keep the c8d4 acceptance point
        depth = kSessionsPerRound / connections;
      }
      char section[32];
      std::snprintf(section, sizeof section, "net_c%dd%d", connections,
                    depth);
      h.run(section, [&] { spikes = pool.round(connections, depth); },
            kMinReps);
      const double ms = h.section_ms(section);
      const double rate = ms > 0.0 ? 1e3 * kSessionsPerRound / ms : 0.0;
      best_rate = std::max(best_rate, rate);
      if (connections == 8 && depth == 4) rate_c8d4 = rate;
      std::printf("%-16s %10d %12.1f %14.0f\n", section, kSessionsPerRound,
                  ms, rate);
      if (spikes == 0) std::printf("  WARNING: round produced no spikes\n");
    }
  }
  std::printf("\nbatched/pipelined peak vs embedded single-stream: "
              "%.2fx\n", base_rate > 0.0 ? best_rate / base_rate : 0.0);

  // The observability tax: the identical c8d4 workload while a ninth
  // connection scrapes `metrics` at ~1 ms cadence — the acceptance bar is
  // that continuous scraping costs <= 2% of throughput (sharded counters
  // and seqlock trace rings are how the telemetry path earns that).
  // Measurement design, forced by a 1-core container where a ~4.5 ms
  // round wobbles tens of percent between back-to-back sections:
  //   * three arms — unobserved, ninth connection polling `ping`, ninth
  //     connection scraping `metrics` — *interleaved* round-robin so all
  //     three sample the same cache/scheduler state (sequential sections
  //     showed a pure ordering bias larger than the effect);
  //   * min-of-10 per arm, taken by hand (the harness runs a section's
  //     reps consecutively, which is exactly what interleaving avoids),
  //     with each timed sample spanning four rounds so one sample is
  //     long enough (~18 ms) to average out time-slice granularity;
  //   * the differential is metrics-vs-ping: on one core any polling
  //     client steals CPU slices whatever verb it sends, so base-vs-obs
  //     prices generic time-slicing, while the ping pair isolates what
  //     the registry design controls.  Even so the differential is
  //     corroboration only — the headline `scrape_overhead_pct` comes
  //     from the direct per-scrape cost measurement below.
  constexpr int kObsRounds = 10;       // recorded interleaved samples/arm
  constexpr int kRoundsPerSample = 4;  // c8d4 rounds inside one sample
  struct ObsArm {
    const char* name;
    const char* verb;  // nullptr: no ninth connection
    const char* note;
    double min_ns = std::numeric_limits<double>::infinity();
    std::uint64_t polls = 0;
  };
  ObsArm arms[] = {
      {"net_c8d4_base", nullptr, "(interleaved unobserved baseline)"},
      {"net_c8d4_ping", "ping", "(ninth conn polling ping)"},
      {"net_c8d4_obs", "metrics", "(continuous metrics scrape)"},
  };
  for (int round = 0; round <= kObsRounds; ++round) {  // round 0 warms up
    for (ObsArm& arm : arms) {
      std::atomic<bool> stop_poll{false};
      std::atomic<bool> poll_ready{arm.verb == nullptr};
      std::thread poller;
      if (arm.verb) {
        poller = std::thread([&] {
          net::Client poll(srv.port());
          while (!stop_poll.load(std::memory_order_acquire)) {
            if (poll.request(arm.verb).empty()) break;  // server gone
            poll_ready.store(true, std::memory_order_release);
            ++arm.polls;  // poller-only write; read after join()
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          }
        });
        while (!poll_ready.load(std::memory_order_acquire))
          std::this_thread::yield();  // clock starts with polling live
      }
      const auto t0 = std::chrono::steady_clock::now();
      for (int i = 0; i < kRoundsPerSample; ++i) spikes = pool.round(8, 4);
      const auto t1 = std::chrono::steady_clock::now();
      if (poller.joinable()) {
        stop_poll.store(true, std::memory_order_release);
        poller.join();
      }
      if (spikes == 0) std::printf("  WARNING: round produced no spikes\n");
      const double ns = static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
              .count());
      if (round > 0 && ns < arm.min_ns) arm.min_ns = ns;
    }
  }
  constexpr int kSessionsPerSample = kSessionsPerRound * kRoundsPerSample;
  auto arm_rate = [&](const ObsArm& arm) {
    return arm.min_ns > 0.0 ? 1e9 * kSessionsPerSample / arm.min_ns : 0.0;
  };
  for (const ObsArm& arm : arms) {
    std::printf("%-16s %10d %12.1f %14.0f  %s\n", arm.name,
                kSessionsPerSample, arm.min_ns / 1e6, arm_rate(arm),
                arm.note);
  }
  const double rate_base = arm_rate(arms[0]);
  const double rate_ping = arm_rate(arms[1]);
  const double rate_obs = arm_rate(arms[2]);
  const double scrape_diff_pct =
      rate_ping > 0.0 && rate_obs > 0.0
          ? (rate_ping / rate_obs - 1.0) * 100.0
          : 0.0;
  const double ninth_conn_overhead_pct =
      rate_base > 0.0 && rate_ping > 0.0
          ? (rate_base / rate_ping - 1.0) * 100.0
          : 0.0;
  std::printf("scrape overhead (differential), metrics vs ping control: "
              "%+.2f%% over %llu scrapes (%llu control pings; ninth "
              "connection vs unobserved: %+.2f%%)\n",
              scrape_diff_pct,
              static_cast<unsigned long long>(arms[2].polls),
              static_cast<unsigned long long>(arms[1].polls),
              ninth_conn_overhead_pct);

  // The headline number is measured *directly*, because the differential
  // above is at the mercy of single-core scheduler jitter (multi-ms
  // time-slice noise on a ~16 ms sample vs a sub-100 µs effect): the
  // marginal cost of one scrape is the mean-RTT delta between
  // back-to-back `metrics` and `ping` requests — same connection, same
  // framing, same syscalls, so the subtraction leaves exactly the
  // telemetry work (shard aggregation, histogram percentiles, response
  // formatting, and the bigger response on the wire).  Dividing by the
  // scrape cadence gives the fraction of one core a continuous scraper
  // consumes; min-of-5 means makes it robust to preemption bursts.
  constexpr int kCostReps = 512;
  constexpr int kCostBlocks = 5;
  constexpr double kScrapeCadenceNs = 1e6;  // the poller's ~1 ms cadence
  net::Client cost_client(srv.port());
  auto request_mean_ns = [&](const char* verb) {
    double best = std::numeric_limits<double>::infinity();
    for (int block = 0; block < kCostBlocks; ++block) {
      for (int i = 0; i < 32; ++i) (void)cost_client.request(verb);
      const auto t0 = std::chrono::steady_clock::now();
      for (int i = 0; i < kCostReps; ++i) (void)cost_client.request(verb);
      const auto t1 = std::chrono::steady_clock::now();
      const double mean =
          static_cast<double>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                  .count()) /
          kCostReps;
      best = std::min(best, mean);
    }
    return best;
  };
  const double ping_rtt_ns = request_mean_ns("ping");
  const double metrics_rtt_ns = request_mean_ns("metrics");
  const double scrape_cost_ns =
      std::max(0.0, metrics_rtt_ns - ping_rtt_ns);
  const double scrape_overhead_pct =
      100.0 * scrape_cost_ns / kScrapeCadenceNs;
  std::printf("per-scrape cost: %.0f ns (metrics rtt %.0f ns - ping rtt "
              "%.0f ns) -> %.2f%% of one core at 1 kHz scraping\n",
              scrape_cost_ns, metrics_rtt_ns, ping_rtt_ns,
              scrape_overhead_pct);

  // The wire-submitted-net column: the same lifecycles, but the client
  // *describes* the network (net block + open app=@) instead of naming a
  // built-in — grammar parse, validation, admission costing and compile
  // all join the timed path.  The delta against net_c<N>d<M> is what the
  // general-purpose front door costs.
  pool.round(2, 2, custom_net_batch);  // warm the describe->compile path
  double wirenet_c8d4 = 0.0;
  double wirenet_c1d1 = 0.0;
  for (const auto& [connections, depth] :
       std::vector<std::pair<int, int>>{{1, 1}, {8, 4}}) {
    char section[32];
    std::snprintf(section, sizeof section, "wirenet_c%dd%d", connections,
                  depth);
    h.run(section,
          [&, c = connections, d = depth] {
            spikes = pool.round(c, d, custom_net_batch);
          },
          kMinReps);
    const double ms = h.section_ms(section);
    const double rate = ms > 0.0 ? 1e3 * kSessionsPerRound / ms : 0.0;
    if (connections == 1) wirenet_c1d1 = rate;
    if (connections == 8) wirenet_c8d4 = rate;
    std::printf("%-16s %10d %12.1f %14.0f  (client-described net)\n",
                section, kSessionsPerRound, ms, rate);
    if (spikes == 0) std::printf("  WARNING: round produced no spikes\n");
  }

  // Reactor scaling: the same c8d4 workload against a worker-model server
  // (reactor_drives off, so >1 reactor is legal) at reactors=1 vs
  // reactors=4.  On a single-core host the two land within noise of each
  // other — the point the trajectory records is the *cost* of sharding
  // (per-reactor epoll sets, handoff, counter shards), which must stay
  // near zero so many-core hosts get the upside for free.
  double rate_r1 = 0.0;
  double rate_r4 = 0.0;
  double wirenet_r1 = 0.0;
  double wirenet_r4 = 0.0;
  for (const std::size_t reactors : {std::size_t{1}, std::size_t{4}}) {
    net::NetConfig rcfg;
    rcfg.reactors = reactors;
    rcfg.session.workers = 2;
    rcfg.session.slice = kBioPerSession;
    rcfg.session.max_sessions = 64;
    net::NetServer rsrv(rcfg);
    ClientPool rpool(rsrv.port(), 8);
    rpool.round(2, 2);  // warm: accepts, engine pool, first adoption
    char section[32];
    std::snprintf(section, sizeof section, "net_c8d4_r%zu", reactors);
    h.run(section, [&] { spikes = rpool.round(8, 4); }, kMinReps);
    const double ms = h.section_ms(section);
    const double rate = ms > 0.0 ? 1e3 * kSessionsPerRound / ms : 0.0;
    std::printf("%-16s %10d %12.1f %14.0f  (%zu reactor%s, 2 workers)\n",
                section, kSessionsPerRound, ms, rate, reactors,
                reactors == 1 ? "" : "s");
    if (spikes == 0) std::printf("  WARNING: round produced no spikes\n");
    std::snprintf(section, sizeof section, "wirenet_c8d4_r%zu", reactors);
    h.run(section,
          [&] { spikes = rpool.round(8, 4, custom_net_batch); }, kMinReps);
    const double wms = h.section_ms(section);
    const double wrate = wms > 0.0 ? 1e3 * kSessionsPerRound / wms : 0.0;
    std::printf("%-16s %10d %12.1f %14.0f  (client-described net)\n",
                section, kSessionsPerRound, wms, wrate);
    if (reactors == 1) {
      rate_r1 = rate;
      wirenet_r1 = wrate;
    } else {
      rate_r4 = rate;
      wirenet_r4 = wrate;
    }
  }
  std::printf("reactor scaling c8d4 (r4/r1): %.2fx builtin, %.2fx wirenet"
              "%s\n",
              rate_r1 > 0.0 ? rate_r4 / rate_r1 : 0.0,
              wirenet_r1 > 0.0 ? wirenet_r4 / wirenet_r1 : 0.0,
              hw <= 1 ? "  (single hw thread: parity expected)" : "");

  std::vector<double> submit_ms;
  for (std::uint64_t i = 0; i < 20; ++i) {
    const double ms = measure_submit_compile_ms(srv.port(), 9500 + i);
    if (ms >= 0.0) submit_ms.push_back(ms);
  }
  if (submit_ms.empty()) {
    // All probes failed: emit an impossible sentinel, not a perfect 0.00
    // that a trajectory consumer would read as a speedup.
    std::printf("WARNING: every submit-compile probe failed\n");
  }
  const double submit_p50 =
      submit_ms.empty() ? -1.0 : percentile(submit_ms, 0.50);
  const double submit_p99 =
      submit_ms.empty() ? -1.0 : percentile(submit_ms, 0.99);
  std::printf("net submission+compile (describe -> built, no run): "
              "p50=%.2f ms p99=%.2f ms over %zu probes\n",
              submit_p50, submit_p99, submit_ms.size());

  std::vector<double> ttfs;
  for (std::uint64_t i = 0; i < 20; ++i) {
    const double ms = measure_ttfs_ms(srv.port(), 9000 + i);
    if (ms >= 0.0) ttfs.push_back(ms);  // failed probes must not skew p50/p99
  }
  const double ttfs_p50 = percentile(ttfs, 0.50);
  const double ttfs_p99 = percentile(ttfs, 0.99);
  std::printf("time-to-first-spike over the socket: p50=%.2f ms "
              "p99=%.2f ms over %zu probes\n",
              ttfs_p50, ttfs_p99, ttfs.size());

  const auto net_stats = srv.stats();
  std::printf("transport: %llu frames in, %llu out, %llu batches, "
              "%llu connections accepted, %llu shed\n",
              static_cast<unsigned long long>(net_stats.frames_in),
              static_cast<unsigned long long>(net_stats.frames_out),
              static_cast<unsigned long long>(net_stats.batches),
              static_cast<unsigned long long>(net_stats.accepted),
              static_cast<unsigned long long>(net_stats.shed_slow +
                                              net_stats.shed_flood));

  h.metric("hw_threads", static_cast<double>(hw), "threads");
  h.metric("sessions_per_sec_embedded_c1", base_rate, "sessions/s");
  h.metric("sessions_per_sec_net_c8d4", rate_c8d4, "sessions/s");
  h.metric("sessions_per_sec_net_c8d4_base", rate_base, "sessions/s");
  h.metric("sessions_per_sec_net_c8d4_ping", rate_ping, "sessions/s");
  h.metric("sessions_per_sec_net_c8d4_obs", rate_obs, "sessions/s");
  h.metric("scrape_overhead_pct", scrape_overhead_pct, "%");
  h.metric("scrape_cost_ns", scrape_cost_ns, "ns");
  h.metric("scrape_diff_pct", scrape_diff_pct, "%");
  h.metric("ninth_conn_overhead_pct", ninth_conn_overhead_pct, "%");
  h.metric("sessions_per_sec_net_best", best_rate, "sessions/s");
  h.metric("net_vs_embedded_ratio",
           base_rate > 0.0 ? best_rate / base_rate : 0.0, "");
  h.metric("sessions_per_sec_wirenet_c1d1", wirenet_c1d1, "sessions/s");
  h.metric("sessions_per_sec_wirenet_c8d4", wirenet_c8d4, "sessions/s");
  h.metric("wirenet_vs_builtin_ratio",
           rate_c8d4 > 0.0 ? wirenet_c8d4 / rate_c8d4 : 0.0, "");
  h.metric("sessions_per_sec_net_c8d4_r1", rate_r1, "sessions/s");
  h.metric("sessions_per_sec_net_c8d4_r4", rate_r4, "sessions/s");
  h.metric("reactor_scaling_c8d4",
           rate_r1 > 0.0 ? rate_r4 / rate_r1 : 0.0, "");
  h.metric("sessions_per_sec_wirenet_c8d4_r1", wirenet_r1, "sessions/s");
  h.metric("sessions_per_sec_wirenet_c8d4_r4", wirenet_r4, "sessions/s");
  h.metric("net_submit_compile_p50_ms", submit_p50, "ms");
  h.metric("net_submit_compile_p99_ms", submit_p99, "ms");
  h.metric("ttfs_p50_ms", ttfs_p50, "ms");
  h.metric("ttfs_p99_ms", ttfs_p99, "ms");
  h.metric("bio_ms_per_session",
           static_cast<double>(kBioPerSession) / kMillisecond, "ms");
  return h.finish();
}
