// E15 — §3.2 fault tolerance: recovery latency and spike loss under
// run-time core failures.
//
// Paper claims: the machine offers "run-time support for functional
// migration and real-time fault mitigation" — a failing core's slice is
// relocated to a spare by the monitor processors and the multicast tables
// rewritten while the fabric keeps serving traffic.  This bench measures
// that machinery end to end on the simulated machine: the distribution of
// reported recovery windows (table writes over the fabric) when a
// slice-hosting core is killed mid-run, and how the delivered spike
// stream degrades as the fault rate climbs.
#include <cstdio>
#include <vector>

#include "core/fault_controller.hpp"
#include "core/system.hpp"
#include "harness.hpp"
#include "sim/stats.hpp"
#include "server/spec.hpp"

namespace {

using namespace spinn;

/// The noise app scattered over a 4x4 machine in 16-neuron slices: 14
/// resident slices spread across chips, so migrations cross chip
/// boundaries and rewrite varying numbers of routers.
server::SessionSpec noise_spec(std::uint64_t seed) {
  server::SessionSpec spec;
  spec.app = "noise";
  spec.seed = seed;
  spec.width = 4;
  spec.height = 4;
  spec.neurons_per_core = 16;
  spec.scatter = true;
  return spec;
}

/// Recovery-latency trials cycle machine shapes so the latency
/// distribution spans the real spread of migration workloads — from a
/// one-router same-chip move on the dense 2x2 to a many-router rewrite on
/// the scattered 4x4 — instead of re-measuring one symmetric case.
server::SessionSpec variant_spec(int t) {
  server::SessionSpec spec;
  spec.app = "noise";
  spec.seed = 100 + static_cast<std::uint64_t>(t);
  switch (t % 4) {
    case 0: break;  // 2x2, 64 neurons/core: everything on one chip
    case 1:
      spec.width = 4;
      spec.height = 4;
      spec.neurons_per_core = 16;
      spec.scatter = true;
      break;
    case 2:
      spec.width = 4;
      spec.height = 4;
      spec.neurons_per_core = 32;
      spec.scatter = true;
      break;
    default:
      spec.neurons_per_core = 32;
      break;
  }
  return spec;
}

/// One faulted run: load the spec's network, kill `kills` slice-hosting
/// cores (cycling over resident slices, one per millisecond from
/// `first_at`), run for `dur`, and return the controller's aggregate.
struct TrialResult {
  FaultTotals totals;
  std::vector<double> recovery_us;  // per successful migration
  std::size_t spikes = 0;           // recorded stream size
  bool failed = false;
};

TrialResult faulted_run(const server::SessionSpec& spec, int kills,
                        TimeNs first_at, TimeNs dur, bool whole_chips = false,
                        int victim_offset = 0) {
  const SystemConfig cfg = server::system_config(spec);
  const neural::Network net = server::build_network(spec);
  System sys(cfg);
  map::LoadReport report = sys.load(net);
  TrialResult out;
  if (!report.ok) {
    out.failed = true;
    return out;
  }
  FaultController faults(sys, net, report.placement, cfg.mapper,
                         /*run_base=*/0, spec.seed);
  // Schedule against the load-time placement; with whole_chips the
  // targets are the first `kills` *distinct* chips hosting a slice, so
  // every kill takes down live traffic rather than re-shooting a corpse.
  std::vector<ChipCoord> chip_targets;
  for (const map::Slice& slice : report.placement.slices) {
    bool seen = false;
    for (const ChipCoord& c : chip_targets) {
      if (c.x == slice.core.chip.x && c.y == slice.core.chip.y) seen = true;
    }
    if (!seen) chip_targets.push_back(slice.core.chip);
  }
  for (int k = 0; k < kills; ++k) {
    FaultAction a;
    a.at = first_at + static_cast<TimeNs>(k) * kMillisecond;
    if (whole_chips) {
      a.kind = FaultAction::Kind::KillChip;
      a.chip = chip_targets[static_cast<std::size_t>(k) %
                            chip_targets.size()];
    } else {
      const map::Slice& slice =
          report.placement.slices[static_cast<std::size_t>(k + victim_offset) %
                                  report.placement.slices.size()];
      a.kind = FaultAction::Kind::KillCore;
      a.chip = slice.core.chip;
      a.core = slice.core.core;
    }
    faults.schedule(a);
  }
  sys.run(dur);
  out.totals = faults.totals();
  for (const FaultRecord& r : faults.records()) {
    if (r.executed && r.ok && r.migrations > 0) {
      out.recovery_us.push_back(static_cast<double>(r.recovery_ns) / 1e3);
    }
  }
  out.spikes = sys.spikes().count();
  std::string reason;
  out.failed = faults.take_failure(&reason);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  spinn::bench::Harness h("bench_e15_fault_recovery", argc, argv);

  // ---- recovery latency distribution ------------------------------------
  // Many independent single-kill runs; each reports the monitor-side
  // reconfiguration window for relocating the victim slice.
  std::vector<double> recovery_us;
  double routers_per_migration = 0.0;
  h.run("kill_core_recovery", [&] {
    recovery_us.clear();
    std::size_t routers = 0, migrations = 0;
    const int trials = 32;
    for (int t = 0; t < trials; ++t) {
      const TrialResult r = faulted_run(variant_spec(t), /*kills=*/1,
                                        /*first_at=*/10 * kMillisecond,
                                        /*dur=*/30 * kMillisecond,
                                        /*whole_chips=*/false,
                                        /*victim_offset=*/t);
      for (const double us : r.recovery_us) recovery_us.push_back(us);
      routers += r.totals.routers_rewritten;
      migrations += r.totals.migrations;
    }
    routers_per_migration =
        migrations > 0 ? static_cast<double>(routers) /
                             static_cast<double>(migrations)
                       : 0.0;
    std::printf("E15: kill-core recovery over %d runs: %zu migrations, "
                "%.1f routers rewritten each\n",
                trials, migrations, routers_per_migration);
  });
  const double p50 = spinn::sim::percentile(recovery_us, 0.50);
  const double p99 = spinn::sim::percentile(recovery_us, 0.99);
  std::printf("  recovery window: p50=%.1f us  p99=%.1f us  (n=%zu)\n",
              p50, p99, recovery_us.size());

  // ---- spike loss vs fault rate -----------------------------------------
  // The same machine under 0, 1, 2, 4 whole-chip kills in a 40 ms run —
  // a chip kill takes the router and all six links with it, so traffic in
  // flight through the dead chip is really lost while every resident slice
  // migrates.  The §3.2 claim is graceful degradation: the lost fraction
  // should grow roughly with the faults, never cliff to a dead machine.
  double loss_at_max = 0.0;
  h.run("spike_loss_vs_fault_rate", [&] {
    const TimeNs dur = 40 * kMillisecond;
    const TrialResult base = faulted_run(noise_spec(7), /*kills=*/0,
                                         10 * kMillisecond, dur);
    std::printf("\n%-8s %12s %12s %16s %10s\n", "kills", "spikes",
                "lost pkts", "stream deficit", "failed");
    for (const int kills : {0, 1, 2, 4}) {
      const TrialResult r = faulted_run(noise_spec(7), kills,
                                        10 * kMillisecond, dur,
                                        /*whole_chips=*/true);
      // Two loss views: packets the fabric dropped inside the recovery
      // windows (usually tiny — the windows are tens of microseconds),
      // and the recorded stream's deficit against the fault-free run —
      // the downstream effect of in-flight traffic dying with the chip.
      const double deficit =
          base.spikes > r.spikes && base.spikes > 0
              ? static_cast<double>(base.spikes - r.spikes) /
                    static_cast<double>(base.spikes)
              : 0.0;
      if (kills == 4) loss_at_max = deficit;
      std::printf("%-8d %12zu %12llu %15.2f%% %10s\n", kills, r.spikes,
                  static_cast<unsigned long long>(r.totals.spikes_lost),
                  100.0 * deficit, r.failed ? "yes" : "no");
    }
  });

  h.metric("recovery_p50_us", p50, "us");
  h.metric("recovery_p99_us", p99, "us");
  h.metric("routers_rewritten_per_migration", routers_per_migration, "");
  h.metric("stream_deficit_at_4_chip_kills", loss_at_max, "");
  return h.finish();
}
