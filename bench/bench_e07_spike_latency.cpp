// E7 — §3.1/§5.3: multicast packet latency across the machine.
//
// Paper claims: "Spike events generate small packets that are delivered
// well within a 1ms time window to any target processor in the system";
// "The communications fabric is designed to deliver mc packets in
// significantly under 1ms, whatever the distance from source to
// destination.  It is also intended to operate in a lightly-loaded regime
// to minimize congestion."
//
// Part A: latency vs hop distance on a 24x24 torus (lightly loaded).
// Part B: latency vs offered load over a fixed 4-hop path — the congestion
// knee that motivates the lightly-loaded regime.
#include <cstdio>
#include <memory>

#include "core/traffic.hpp"
#include "harness.hpp"
#include "mesh/machine.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace spinn;

mesh::MachineConfig machine_config(std::uint16_t dim) {
  mesh::MachineConfig mc;
  mc.width = dim;
  mc.height = dim;
  mc.chip.num_cores = 2;
  mc.chip.clock_drift_ppm_sigma = 0.0;
  return mc;
}

/// Measure source->core delivery latency over `hops` eastward hops.
void measure_distance(std::uint16_t dim, int hops, double packets_per_tick,
                      double* mean_us, double* p99_us, double* max_us,
                      std::uint64_t* delivered) {
  sim::Simulator sim(3);
  mesh::Machine m(sim, machine_config(dim));
  const RoutingKey key = 0x10;
  const ChipCoord src{0, 0};
  const ChipCoord dst{static_cast<std::uint16_t>(hops % dim), 0};
  m.chip_at(src).router().mc_table().add(
      {key, ~0u, router::Route::to_link(LinkDir::East)});
  m.chip_at(dst).router().mc_table().add(
      {key, ~0u, router::Route::to_core(1)});

  sim::Histogram latency(0.0, 1e6, 1000);
  auto probe = std::make_unique<core::LatencyProbe>(&latency);
  core::LatencyProbe* probe_ptr = probe.get();
  m.chip_at(dst).core(1).load_program(std::move(probe));
  m.chip_at(dst).core(1).start();

  core::TrafficSource::Config tc;
  tc.keys = {key};
  tc.packets_per_tick = packets_per_tick;
  auto source = std::make_unique<core::TrafficSource>(tc);
  m.chip_at(src).core(1).load_program(std::move(source));
  m.chip_at(src).core(1).start();

  m.start_all_timers();
  sim.run_until(200 * kMillisecond);
  m.stop_all_timers();
  sim.run_until(sim.now() + 2 * kMillisecond);

  *mean_us = latency.summary().mean() / 1000.0;
  *p99_us = latency.percentile(0.99) / 1000.0;
  *max_us = latency.summary().max() / 1000.0;
  *delivered = probe_ptr->received();
}

}  // namespace

int main(int argc, char** argv) {
  spinn::bench::Harness h("bench_e07_spike_latency", argc, argv);
  double worst_max = 0.0;
  std::printf("E7: multicast latency across the fabric\n\n");

  h.run("distance_sweep", [&] {
    std::printf("Part A: latency vs hop distance (24x24 torus, ~2 "
                "packets/ms offered)\n");
    std::printf("%-8s %12s %12s %12s %12s %14s\n", "hops", "mean(us)",
                "p99(us)", "max(us)", "delivered", "<1ms budget?");
    worst_max = 0.0;
    for (const int hops : {1, 2, 4, 6, 8, 10, 12}) {
      double mean_us, p99_us, max_us;
      std::uint64_t delivered;
      measure_distance(24, hops, 2.0, &mean_us, &p99_us, &max_us,
                       &delivered);
      worst_max = max_us > worst_max ? max_us : worst_max;
      std::printf("%-8d %12.2f %12.2f %12.2f %12llu %14s\n", hops, mean_us,
                  p99_us, max_us, static_cast<unsigned long long>(delivered),
                  max_us < 1000.0 ? "yes" : "NO");
    }
    std::printf("\nWorst observed delivery: %.1f us — %.1fx under the 1 ms "
                "window (paper: \"significantly under 1ms,\nwhatever the "
                "distance\").\n\n",
                worst_max, 1000.0 / worst_max);
  });

  h.run("load_sweep", [&] {
    std::printf("Part B: latency vs offered load over 4 hops (congestion "
                "knee)\n");
    std::printf("%-22s %12s %12s %12s\n", "offered (pkts/ms)", "mean(us)",
                "p99(us)", "delivered");
    for (const double rate : {1.0, 10.0, 50.0, 200.0, 500.0, 1000.0}) {
      double mean_us, p99_us, max_us;
      std::uint64_t delivered;
      measure_distance(8, 4, rate, &mean_us, &p99_us, &max_us, &delivered);
      std::printf("%-22.0f %12.2f %12.2f %12llu\n", rate, mean_us, p99_us,
                  static_cast<unsigned long long>(delivered));
    }
    std::printf("\nLatency is flat until the 40-bit/250-Mb/s serialization "
                "budget (~6.2k pkts/ms/link) nears; the\ndesign point keeps "
                "the fabric lightly loaded so congestion delays stay "
                "negligible (§5.3).\n");
  });
  h.metric("worst_delivery_latency_us", worst_max, "us");
  return h.finish();
}
