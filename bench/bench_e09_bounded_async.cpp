// E9 — §3.1: bounded asynchrony — "time is free running and there is no
// global synchronization ... system-wide (approximate) synchrony is just a
// side-effect of the 1ms timer interrupts running at the same rate
// throughout the system and the communication delays being negligible on
// the ms timescale."
//
// Every chip's timer runs from its own drifting clock.  We log tick trains
// across the machine for 10 s and report: tick-rate spread, the growth of
// the worst-case phase skew, and the fraction of a tick period it reaches.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <vector>

#include "chip/core.hpp"
#include "harness.hpp"
#include "mesh/machine.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace spinn;

class TickLogger final : public chip::CoreProgram {
 public:
  explicit TickLogger(std::vector<TimeNs>* out) : out_(out) {}
  std::uint64_t on_timer(chip::CoreApi& api) override {
    out_->push_back(api.now());
    return 80;
  }

 private:
  std::vector<TimeNs>* out_;
};

}  // namespace

int main(int argc, char** argv) {
  spinn::bench::Harness h("bench_e09_bounded_async", argc, argv);
  double worst_skew_growth_us_per_s = 0.0;
  h.run("drift_sweep", [&] {
    worst_skew_growth_us_per_s = 0.0;
    std::printf("E9: bounded asynchrony — GALS timers with no global clock "
                "(§3.1, Fig. 5)\n\n");
    std::printf("%-14s %10s %12s %16s %18s %16s\n", "drift sigma", "chips",
                "ticks/chip", "rate spread", "skew growth", "10 s drift");
    std::printf("%-14s %10s %12s %16s %18s %16s\n", "(ppm)", "", "(10 s)",
                "(ppm, max-min)", "(us per second)", "(ticks apart)");

    for (const double sigma : {0.0, 20.0, 50.0, 100.0}) {
      sim::Simulator sim(17);
      mesh::MachineConfig mc;
      mc.width = 4;
      mc.height = 4;
      mc.chip.num_cores = 2;
      mc.chip.clock_drift_ppm_sigma = sigma;
      mesh::Machine m(sim, mc);

      std::vector<std::vector<TimeNs>> logs(m.num_chips());
      for (std::size_t i = 0; i < m.num_chips(); ++i) {
        const ChipCoord c = m.topology().coord_of(i);
        auto& core = m.chip_at(c).core(1);
        core.load_program(std::make_unique<TickLogger>(&logs[i]));
        core.start();
      }
      m.start_all_timers();
      sim.run_until(10 * kSecond);
      m.stop_all_timers();

      // Tick-rate spread: each chip's local period, relative to nominal
      // 1 ms.
      double min_ppm = 1e18, max_ppm = -1e18, max_ticks = 0;
      for (const auto& log : logs) {
        max_ticks = std::max(max_ticks, static_cast<double>(log.size()));
        if (log.size() < 2) continue;
        const double period = static_cast<double>(log[1] - log[0]);
        const double ppm = (1e6 / period - 1.0) * 1e6;
        min_ppm = std::min(min_ppm, ppm);
        max_ppm = std::max(max_ppm, ppm);
      }
      const double spread_ppm = max_ppm - min_ppm;

      // Phase skew: for tick index k, the spread of the k-th tick times;
      // its growth rate is the relative clock drift.
      auto skew_at = [&](std::size_t k) {
        TimeNs lo = INT64_MAX, hi = 0;
        for (const auto& log : logs) {
          if (k >= log.size()) return static_cast<TimeNs>(-1);
          lo = std::min(lo, log[k]);
          hi = std::max(hi, log[k]);
        }
        return hi - lo;
      };
      const TimeNs early = skew_at(100);   // ~0.1 s in
      const TimeNs late = skew_at(9'800);  // ~9.8 s in
      const double growth_us_per_s =
          early >= 0 && late >= 0
              ? static_cast<double>(late - early) / 1000.0 / 9.7
              : 0.0;
      const double ticks_apart = growth_us_per_s * 10.0 / 1000.0;
      worst_skew_growth_us_per_s =
          std::max(worst_skew_growth_us_per_s, growth_us_per_s);

      std::printf("%-14.0f %10zu %12.0f %16.1f %18.2f %16.2f\n", sigma,
                  m.num_chips(), max_ticks, spread_ppm, growth_us_per_s,
                  ticks_apart);
    }

    std::printf("\nTimers start at random phases and drift apart at ppm "
                "rates — there is never a global clock edge —\nyet all "
                "chips compute biological milliseconds at rates equal to "
                "within ppm, and after 10 s the\nfastest and slowest chips "
                "disagree by at most a few ticks.  Synchrony is approximate "
                "and emergent\n(§3.1): spike packets cross the machine in "
                "microseconds (E7), so on the 1 ms timescale of the\nneural "
                "model the machine behaves as if synchronised.\n");
  });
  h.metric("worst_skew_growth_us_per_s", worst_skew_growth_us_per_s,
           "us/s");
  return h.finish();
}
