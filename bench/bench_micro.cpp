// Micro-benchmarks (google-benchmark) for the simulator's hot kernels: the
// delay-insensitive codecs, multicast table lookup, event-queue operations,
// neuron-slice updates, the deferred-event ring and topology routing.
// These bound how large a machine/network the simulator itself can handle.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "link/codes.hpp"
#include "mesh/topology.hpp"
#include "neural/input_ring.hpp"
#include "neural/neuron_models.hpp"
#include "router/routing_table.hpp"
#include "sim/event_queue.hpp"

namespace {

using namespace spinn;

void BM_CodecRtzRoundTrip(benchmark::State& state) {
  const link::ThreeOfSixRtz code;
  std::uint8_t v = 0;
  for (auto _ : state) {
    const auto w = code.encode(v);
    benchmark::DoNotOptimize(code.decode(w));
    v = (v + 1) & 0xF;
  }
}
BENCHMARK(BM_CodecRtzRoundTrip);

void BM_CodecNrzRoundTrip(benchmark::State& state) {
  const link::TwoOfSevenNrz code;
  std::uint8_t v = 0;
  for (auto _ : state) {
    const auto w = code.encode(v);
    benchmark::DoNotOptimize(code.decode(w));
    v = (v + 1) & 0xF;
  }
}
BENCHMARK(BM_CodecNrzRoundTrip);

void BM_McTableLookup(benchmark::State& state) {
  router::MulticastTable table;
  const auto entries = static_cast<std::size_t>(state.range(0));
  for (std::size_t i = 0; i < entries; ++i) {
    table.add({static_cast<RoutingKey>(i << 11), 0xFFFFF800u,
               router::Route::to_core(1)});
  }
  Rng rng(1);
  for (auto _ : state) {
    const auto key = static_cast<RoutingKey>(rng.uniform_int(entries) << 11);
    benchmark::DoNotOptimize(table.lookup(key));
  }
}
BENCHMARK(BM_McTableLookup)->Arg(16)->Arg(128)->Arg(1024);

void BM_EventQueueSchedule(benchmark::State& state) {
  sim::EventQueue q;
  TimeNs t = 0;
  for (auto _ : state) {
    q.schedule_at(++t, [] {});
    if (q.pending() > 10000) q.clear();
  }
}
BENCHMARK(BM_EventQueueSchedule);

void BM_EventQueueChurn(benchmark::State& state) {
  sim::EventQueue q;
  Rng rng(2);
  TimeNs horizon = 0;
  for (int i = 0; i < 1000; ++i) {
    q.schedule_at(static_cast<TimeNs>(rng.uniform_int(1'000'000)), [] {});
  }
  for (auto _ : state) {
    q.step();
    horizon = q.now() + 1 + static_cast<TimeNs>(rng.uniform_int(1000));
    q.schedule_at(horizon, [] {});
  }
}
BENCHMARK(BM_EventQueueChurn);

void BM_LifSliceUpdate(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  neural::LifSlice slice(n, neural::LifParams{});
  std::vector<Accum> input(n, Accum::from_double(0.5));
  std::vector<std::uint32_t> spikes;
  for (auto _ : state) {
    spikes.clear();
    slice.update(input, spikes);
    benchmark::DoNotOptimize(spikes.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_LifSliceUpdate)->Arg(256)->Arg(1024);

void BM_IzhSliceUpdate(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  neural::IzhSlice slice(n, neural::IzhParams{});
  std::vector<Accum> input(n, Accum::from_double(3.0));
  std::vector<std::uint32_t> spikes;
  for (auto _ : state) {
    spikes.clear();
    slice.update(input, spikes);
    benchmark::DoNotOptimize(spikes.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_IzhSliceUpdate)->Arg(256)->Arg(1024);

void BM_InputRingAddDrain(benchmark::State& state) {
  neural::InputRing ring(256);
  Rng rng(3);
  std::uint32_t tick = 0;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      ring.add(tick, static_cast<std::uint32_t>(rng.uniform_int(256)),
               static_cast<std::uint8_t>(1 + rng.uniform_int(15)),
               Accum::from_double(0.1));
    }
    benchmark::DoNotOptimize(ring.drain(tick));
    ++tick;
  }
}
BENCHMARK(BM_InputRingAddDrain);

void BM_TopologyRoute(benchmark::State& state) {
  const mesh::Topology topo(48, 48);
  Rng rng(4);
  for (auto _ : state) {
    const ChipCoord a{static_cast<std::uint16_t>(rng.uniform_int(48)),
                      static_cast<std::uint16_t>(rng.uniform_int(48))};
    const ChipCoord b{static_cast<std::uint16_t>(rng.uniform_int(48)),
                      static_cast<std::uint16_t>(rng.uniform_int(48))};
    benchmark::DoNotOptimize(topo.route(a, b));
  }
}
BENCHMARK(BM_TopologyRoute);

void BM_RngPoisson(benchmark::State& state) {
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.poisson(3.0));
  }
}
BENCHMARK(BM_RngPoisson);

}  // namespace
