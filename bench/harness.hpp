// Shared macro-benchmark harness.
//
// Every bench_* binary (except the google-benchmark micro suite) routes its
// measurement through this harness so all of them speak one CLI and one
// machine-readable format:
//
//   ./bench_e02_link_codes                 # human-readable run, 1 rep
//   ./bench_e02_link_codes --reps 5 --warmup 1 --json out.json
//
// The harness times each registered section with std::chrono::steady_clock
// at nanosecond precision (min/mean/max over the repetitions, after the
// warmup runs are discarded) and benches can attach named domain metrics
// (deadlock rates, routing-table sizes, ...) from their last repetition.
// --quiet redirects stdout to /dev/null before anything runs, so the
// bench's report is suppressed and the timed sections always pay the same
// (null-sink) printf cost regardless of where output would have gone.
// With --json it writes one JSON object per binary, which bench_all.py
// aggregates into BENCH_<commit>.json — the perf trajectory that future
// optimisation PRs are measured against.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

namespace spinn::bench {

// Percentiles live in sim/stats.hpp (spinn::sim::percentile); benches that
// publish p50/p99 metrics include that directly rather than keeping a
// second interpolation rule here.

class Harness {
 public:
  Harness(std::string name, int argc, char** argv) : name_(std::move(name)) {
    const auto value_of = [&](int& i) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s requires a value\n", name_.c_str(),
                     argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    const auto int_value_of = [&](int& i) {
      const char* flag = argv[i];
      const char* text = value_of(i);
      char* end = nullptr;
      const long v = std::strtol(text, &end, 10);
      if (end == text || *end != '\0') {
        std::fprintf(stderr, "%s: %s expects an integer, got '%s'\n",
                     name_.c_str(), flag, text);
        std::exit(2);
      }
      return static_cast<int>(v);
    };
    for (int i = 1; i < argc; ++i) {
      const char* arg = argv[i];
      if (std::strcmp(arg, "--json") == 0) {
        json_path_ = value_of(i);
      } else if (std::strcmp(arg, "--reps") == 0) {
        reps_ = std::max(1, int_value_of(i));
      } else if (std::strcmp(arg, "--warmup") == 0) {
        warmup_ = std::max(0, int_value_of(i));
      } else if (std::strcmp(arg, "--quiet") == 0) {
        quiet_ = true;
      } else if (std::strcmp(arg, "--help") == 0) {
        std::printf(
            "usage: %s [--reps N] [--warmup N] [--json PATH] [--quiet]\n",
            name_.c_str());
        std::exit(0);
      } else {
        std::fprintf(stderr, "%s: unknown argument '%s'\n", name_.c_str(),
                     arg);
        std::exit(2);
      }
    }
    if (quiet_) {
      if (std::freopen("/dev/null", "w", stdout) == nullptr) {
        std::fprintf(stderr, "%s: cannot redirect stdout to /dev/null\n",
                     name_.c_str());
        std::exit(2);
      }
    }
  }

  Harness(const Harness&) = delete;
  Harness& operator=(const Harness&) = delete;

  bool quiet() const { return quiet_; }

  /// True while run() is executing the untimed warmup repetitions — lets a
  /// bench keep cold-start samples out of latency metrics it accumulates
  /// inside the section body.
  bool warming_up() const { return warming_up_; }

  // Runs `fn` warmup_ times untimed, then reps_ times timed, and records a
  // section with min/mean/max wall-clock nanoseconds per repetition.  The
  // bench's printed report (if any) repeats with the body; --quiet sends
  // it to /dev/null.  `min_reps` lets a bench demand repetitions even when
  // the CLI asked for one — for sections so short that a single sample is
  // mostly scheduler noise (the min over reps is the published time).
  template <class F>
  void run(const std::string& section, F&& fn, int min_reps = 1) {
    using clock = std::chrono::steady_clock;
    const int reps = std::max(reps_, min_reps);
    warming_up_ = true;
    for (int i = 0; i < warmup_; ++i) fn();
    warming_up_ = false;
    Section s;
    s.name = section;
    s.reps = reps;
    s.warmup = warmup_;
    for (int i = 0; i < reps; ++i) {
      const auto t0 = clock::now();
      fn();
      const auto t1 = clock::now();
      const auto ns = static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
              .count());
      s.ns_min = std::min(s.ns_min, ns);
      s.ns_max = std::max(s.ns_max, ns);
      s.ns_sum += ns;
    }
    sections_.push_back(std::move(s));
  }

  // Best (minimum) wall-clock of an already-run section, in milliseconds;
  // 0 if the section is unknown.  Lets later sections report speedups.
  double section_ms(const std::string& section) const {
    for (const Section& s : sections_) {
      if (s.name == section) return s.ns_min / 1e6;
    }
    return 0.0;
  }

  // Attaches a named scalar result (rate, count, percentage, ...) from the
  // bench's domain so the JSON trajectory can track quality metrics, not
  // just wall-clock time.
  void metric(const std::string& name, double value,
              const std::string& unit = "") {
    metrics_.push_back(Metric{name, unit, value});
  }

  // Emits the report; returns the process exit code (0) so main can end with
  // `return h.finish();`.
  int finish() {
    if (!quiet_) {
      for (const Section& s : sections_) {
        std::printf("[harness] %s/%s: reps=%d warmup=%d min=%.0f ns "
                    "mean=%.0f ns max=%.0f ns\n",
                    name_.c_str(), s.name.c_str(), s.reps, s.warmup, s.ns_min,
                    s.mean(), s.ns_max);
      }
    }
    if (!json_path_.empty()) {
      std::FILE* f = std::fopen(json_path_.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "%s: cannot open %s for writing\n", name_.c_str(),
                     json_path_.c_str());
        return 1;
      }
      write_json(f);
      std::fclose(f);
    }
    return 0;
  }

 private:
  struct Section {
    std::string name;
    int reps = 0;
    int warmup = 0;
    double ns_min = std::numeric_limits<double>::max();
    double ns_max = 0.0;
    double ns_sum = 0.0;
    double mean() const { return reps > 0 ? ns_sum / reps : 0.0; }
  };
  struct Metric {
    std::string name;
    std::string unit;
    double value;
  };

  static void write_escaped(std::FILE* f, const std::string& s) {
    for (const char c : s) {
      if (c == '"' || c == '\\') {
        std::fputc('\\', f);
        std::fputc(c, f);
      } else if (static_cast<unsigned char>(c) < 0x20) {
        std::fprintf(f, "\\u%04x", c);
      } else {
        std::fputc(c, f);
      }
    }
  }

  void write_json(std::FILE* f) const {
    std::fprintf(f, "{\"bench\":\"");
    write_escaped(f, name_);
    std::fprintf(f, "\",\"sections\":[");
    for (std::size_t i = 0; i < sections_.size(); ++i) {
      const Section& s = sections_[i];
      std::fprintf(f, "%s{\"name\":\"", i == 0 ? "" : ",");
      write_escaped(f, s.name);
      std::fprintf(f,
                   "\",\"reps\":%d,\"warmup\":%d,\"ns_min\":%.0f,"
                   "\"ns_mean\":%.0f,\"ns_max\":%.0f}",
                   s.reps, s.warmup, s.ns_min, s.mean(), s.ns_max);
    }
    std::fprintf(f, "],\"metrics\":[");
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      const Metric& m = metrics_[i];
      std::fprintf(f, "%s{\"name\":\"", i == 0 ? "" : ",");
      write_escaped(f, m.name);
      std::fprintf(f, "\",\"unit\":\"");
      write_escaped(f, m.unit);
      std::fprintf(f, "\",\"value\":%.17g}", m.value);
    }
    std::fprintf(f, "]}\n");
  }

  std::string name_;
  std::string json_path_;
  int reps_ = 1;
  int warmup_ = 0;
  bool quiet_ = false;
  bool warming_up_ = false;
  std::vector<Section> sections_;
  std::vector<Metric> metrics_;
};

}  // namespace spinn::bench
