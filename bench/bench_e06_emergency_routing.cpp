// E6 — §5.3 / Fig. 8: hardware emergency routing around a failed or
// congested link.
//
// Paper claims: packets that should pass through an affected link are
// redirected "around the two other sides of one of the mesh triangles";
// transient congestion resolves by itself; a persistently blocked router
// never wedges — it drops after two programmable waits and informs the
// Monitor Processor, which "can recover the packet and re-issue it".
//
// Scenario: a steady multicast stream crosses the link (3,3)->E->(4,3) of an
// 8x8 torus.  Mid-run the link dies.  We compare delivery and latency with
// emergency routing enabled vs disabled, and show monitor-driven recovery
// of dropped packets.
#include <cstdio>
#include <memory>

#include "core/traffic.hpp"
#include "harness.hpp"
#include "mesh/machine.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace spinn;

struct RunResult {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t emergency = 0;
  std::uint64_t dropped = 0;
  std::uint64_t reinjected = 0;
  double mean_latency_us = 0.0;
  double p99_latency_us = 0.0;
};

RunResult run_case(bool emergency_enabled, bool monitor_reroutes,
                   double packets_per_tick) {
  sim::Simulator sim(11);
  mesh::MachineConfig mc;
  mc.width = 8;
  mc.height = 8;
  mc.chip.num_cores = 2;
  mc.chip.clock_drift_ppm_sigma = 0.0;
  mc.chip.router.emergency_routing_enabled = emergency_enabled;
  mesh::Machine m(sim, mc);

  // Path: (2,3) -> E -> (3,3) -> E -> (4,3) -> E -> (5,3), delivered there.
  const RoutingKey key = 0x40;
  m.chip_at({2, 3}).router().mc_table().add(
      {key, ~0u, router::Route::to_link(LinkDir::East)});
  m.chip_at({5, 3}).router().mc_table().add(
      {key, ~0u, router::Route::to_core(1)});
  // (3,3) and (4,3) default-route the straight line.

  sim::Histogram latency(0.0, 1e6, 200);  // ns
  auto probe = std::make_unique<core::LatencyProbe>(&latency);
  core::LatencyProbe* probe_ptr = probe.get();
  m.chip_at({5, 3}).core(1).load_program(std::move(probe));
  m.chip_at({5, 3}).core(1).start();

  core::TrafficSource::Config tc;
  tc.keys = {key};
  tc.packets_per_tick = packets_per_tick;
  auto source = std::make_unique<core::TrafficSource>(tc);
  core::TrafficSource* source_ptr = source.get();
  m.chip_at({2, 3}).core(1).load_program(std::move(source));
  m.chip_at({2, 3}).core(1).start();

  // Monitor recovery (§5.3): on the first drop, install a *permanent
  // rerouting around the failed link* — (3,3)->NE->(4,4)->S->(4,3)->E — and
  // re-issue every dropped packet.
  RunResult result;
  bool rerouted = false;
  m.chip_at({3, 3}).set_monitor_event_handler(
      [&, key](const router::RouterEvent& e) {
        if (e.type != router::RouterEventType::PacketDropped ||
            !monitor_reroutes) {
          return;
        }
        if (!rerouted) {
          rerouted = true;
          m.chip_at({3, 3}).router().mc_table().add(
              {key, ~0u, router::Route::to_link(LinkDir::NorthEast)});
          m.chip_at({4, 4}).router().mc_table().add(
              {key, ~0u, router::Route::to_link(LinkDir::South)});
          m.chip_at({4, 3}).router().mc_table().add(
              {key, ~0u, router::Route::to_link(LinkDir::East)});
        }
        ++result.reinjected;
        router::Packet p = e.packet;
        p.er = router::ErState::Normal;
        sim.after(50 * kMicrosecond, [&m, p] {
          m.chip_at({3, 3}).router().receive(p, std::nullopt);
        });
      });

  m.start_all_timers();
  sim.run_until(50 * kMillisecond);
  // Fail the middle link mid-run.
  m.fail_link({3, 3}, LinkDir::East);
  sim.run_until(150 * kMillisecond);
  m.stop_all_timers();
  sim.run_until(sim.now() + 5 * kMillisecond);

  const auto totals = m.fabric_totals();
  result.sent = source_ptr->sent();
  result.delivered = probe_ptr->received();
  result.emergency = totals.emergency_first_leg;
  result.dropped = totals.dropped;
  result.mean_latency_us = latency.summary().mean() / 1000.0;
  result.p99_latency_us = latency.percentile(0.99) / 1000.0;
  return result;
}

void print_row(const char* label, const RunResult& r) {
  std::printf("%-34s %8llu %10llu %11.1f%% %10llu %8llu %8llu %9.2f %9.2f\n",
              label, static_cast<unsigned long long>(r.sent),
              static_cast<unsigned long long>(r.delivered),
              r.sent ? 100.0 * static_cast<double>(r.delivered) /
                           static_cast<double>(r.sent)
                     : 0.0,
              static_cast<unsigned long long>(r.emergency),
              static_cast<unsigned long long>(r.dropped),
              static_cast<unsigned long long>(r.reinjected),
              r.mean_latency_us, r.p99_latency_us);
}

}  // namespace

int main(int argc, char** argv) {
  spinn::bench::Harness h("bench_e06_emergency_routing", argc, argv);
  std::printf("E6: emergency routing around a failed link (Fig. 8) — link "
              "(3,3)->(4,3) dies at t=50 ms of 150 ms\n\n");
  std::printf("%-34s %8s %10s %12s %10s %8s %8s %9s %9s\n", "configuration",
              "sent", "delivered", "delivery", "emergency", "dropped",
              "reinject", "lat(us)", "p99(us)");

  const double rate = 3.0;  // packets per 1 ms tick: lightly loaded
  RunResult er_on, er_off, er_off_monitor, er_on_monitor;
  h.run("er_on", [&] { er_on = run_case(true, false, rate); });
  h.run("er_off", [&] { er_off = run_case(false, false, rate); });
  h.run("er_off_monitor", [&] { er_off_monitor = run_case(false, true, rate); });
  h.run("er_on_monitor", [&] { er_on_monitor = run_case(true, true, rate); });

  print_row("emergency routing ON", er_on);
  print_row("emergency routing OFF", er_off);
  print_row("ER OFF + monitor reroute", er_off_monitor);
  print_row("ER ON  + monitor reroute", er_on_monitor);

  std::printf("\nWith ER on, packets detour the triangle (NE then S) and "
              "delivery stays ~100%%; with ER off the\nrouter honours its "
              "\"never persistently refuse\" rule by dropping after two "
              "programmable waits.\nThe Monitor Processor recovers dropped "
              "packets and installs a permanent rerouting around the\ndead "
              "link (§5.3), restoring delivery without hardware ER.\n");
  h.metric("er_on_delivery_pct",
           er_on.sent ? 100.0 * static_cast<double>(er_on.delivered) /
                            static_cast<double>(er_on.sent)
                      : 0.0,
           "%");
  h.metric("er_off_monitor_delivery_pct",
           er_off_monitor.sent
               ? 100.0 * static_cast<double>(er_off_monitor.delivered) /
                     static_cast<double>(er_off_monitor.sent)
               : 0.0,
           "%");
  return h.finish();
}
