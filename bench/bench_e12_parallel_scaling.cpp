// E12 — sharded-engine parallel scaling.
//
// The paper's machine is a GALS system: locally-synchronous chips behind an
// asynchronous, bounded-latency fabric (§3, §4).  The sharded engine
// exploits exactly that structure — per-shard event queues synchronised by a
// conservative window equal to the minimum inter-shard link latency — so the
// simulator of a massively-parallel machine is itself massively parallel.
//
// This bench sweeps worker threads 1 -> 8 over a large-mesh spiking network
// and reports events/second and speedup vs the serial reference engine.  The
// link flight time is set to 1 us (a board-to-board figure rather than the
// 10 ns on-PCB default) to give the conservative window realistic room; the
// results are bit-identical either way, only wall-clock changes.  Sanity:
// every configuration's spike count is checked against the serial run —
// a mismatch marks the bench output and the equality metric.
//
// Note: speedup is only meaningful on a machine with that much hardware
// parallelism; `hw_threads` is reported alongside so the trajectory can be
// read honestly.
#include <cstdio>
#include <thread>

#include "core/system.hpp"
#include "harness.hpp"

namespace {

using namespace spinn;

constexpr TimeNs kRunTime = 10 * kMillisecond;

SystemConfig scenario_config(const sim::EngineConfig& engine) {
  SystemConfig cfg;
  cfg.machine.width = 12;
  cfg.machine.height = 12;
  cfg.machine.chip.num_cores = 4;
  cfg.machine.seed = 12;
  // Board-level link latency: the conservative parallel window.
  cfg.machine.chip.router.port.flight_ns = 1000;
  cfg.mapper.neurons_per_core = 256;
  cfg.engine = engine;
  return cfg;
}

struct RunResult {
  std::uint64_t spikes = 0;
  std::uint64_t events = 0;
};

RunResult run_scenario(const sim::EngineConfig& engine) {
  System sys(scenario_config(engine));
  neural::Network net;
  // ~18k LIF neurons driven by 6k Poisson sources, sparse random fan-out:
  // the per-tick neuron updates are the parallel compute, the spike traffic
  // is the cross-shard communication.
  const auto noise = net.add_poisson("noise", 6000, 30.0);
  const auto exc = net.add_lif("exc", 18000);
  net.connect(noise, exc, neural::Connector::fixed_probability(0.0045),
              neural::ValueDist::uniform(4.0, 8.0),
              neural::ValueDist::fixed(1.0));
  net.connect(exc, exc, neural::Connector::fixed_probability(0.0005),
              neural::ValueDist::fixed(2.0), neural::ValueDist::fixed(1.0));
  if (!sys.load(net).ok) return {};
  sys.run(kRunTime);
  return RunResult{sys.spikes().count(), sys.engine().executed()};
}

sim::EngineConfig sharded(std::uint32_t threads) {
  sim::EngineConfig ec;
  ec.kind = sim::EngineKind::Sharded;
  ec.shards = 8;
  ec.threads = threads;
  return ec;
}

}  // namespace

int main(int argc, char** argv) {
  spinn::bench::Harness h("bench_e12_parallel_scaling", argc, argv);
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("E12: sharded-engine scaling on a 12x12 mesh (%u hw threads)\n\n",
              hw);

  RunResult serial{};
  double serial_ms = 0.0;
  h.run("serial", [&] { serial = run_scenario(sim::EngineConfig{}); });
  serial_ms = h.section_ms("serial");
  std::printf("%-12s %14s %14s %12s %10s %8s\n", "engine", "events",
              "events/s", "spikes", "time(ms)", "speedup");
  std::printf("%-12s %14llu %14.0f %12llu %10.1f %8s\n", "serial",
              static_cast<unsigned long long>(serial.events),
              serial_ms > 0.0 ? 1e3 * static_cast<double>(serial.events) /
                                    serial_ms
                              : 0.0,
              static_cast<unsigned long long>(serial.spikes), serial_ms,
              "1.00x");

  bool all_equal = true;
  double speedup_at_8 = 0.0;
  for (const std::uint32_t threads : {1u, 2u, 4u, 8u}) {
    char section[32];
    std::snprintf(section, sizeof section, "sharded_%ut", threads);
    RunResult r{};
    h.run(section, [&] { r = run_scenario(sharded(threads)); });
    const double ms = h.section_ms(section);
    const double speedup = ms > 0.0 ? serial_ms / ms : 0.0;
    if (threads == 8) speedup_at_8 = speedup;
    const bool equal = r.spikes == serial.spikes;
    all_equal = all_equal && equal;
    std::printf("%-12s %14llu %14.0f %12llu %10.1f %7.2fx%s\n", section,
                static_cast<unsigned long long>(r.events),
                ms > 0.0 ? 1e3 * static_cast<double>(r.events) / ms : 0.0,
                static_cast<unsigned long long>(r.spikes), ms, speedup,
                equal ? "" : "  SPIKE MISMATCH vs serial!");
  }
  std::printf("\n8 shards, conservative window = 1 us link flight; results "
              "bit-identical to serial: %s.\n",
              all_equal ? "yes" : "NO");
  if (hw < 8) {
    std::printf("(this host has %u hw thread(s): speedup is barrier overhead "
                "only, not a scaling measurement)\n", hw);
  }

  h.metric("hw_threads", static_cast<double>(hw), "threads");
  h.metric("speedup_8_threads", speedup_at_8, "x");
  h.metric("serial_events_per_sec",
           serial_ms > 0.0
               ? 1e3 * static_cast<double>(serial.events) / serial_ms
               : 0.0,
           "events/s");
  h.metric("spike_equality", all_equal ? 1.0 : 0.0, "bool");
  return h.finish();
}
