// E11 — §1/§6: real-time capacity — how many neurons one core can simulate
// in biological real time, and what the full machine adds up to.
//
// Paper claims: the machine is "capable of modeling a billion spiking
// neurons in biological real time" with "more than a million ARM processor
// cores... delivering around 200 teraIPS" — i.e. ~1000 neurons per core at
// 1 ms resolution.
//
// We load a single core with N LIF neurons receiving Poisson input at a
// biological mean rate and count missed 1 ms deadlines as N grows; the
// largest overrun-free N is the real-time capacity, which we extrapolate to
// the million-core machine.
#include <cstdio>

#include "core/system.hpp"
#include "energy/cost_model.hpp"
#include "harness.hpp"

namespace {

using namespace spinn;

struct CapacityPoint {
  std::uint32_t neurons;
  double cpu_percent;       // timer-handler busy time / wall time
  std::uint64_t overruns;   // missed deadlines over the run
  std::uint64_t spikes;
};

CapacityPoint run_point(std::uint32_t neurons, double input_rate_hz,
                        double connect_prob = 0.05) {
  SystemConfig cfg;
  cfg.machine.width = 1;
  cfg.machine.height = 1;
  cfg.machine.chip.num_cores = 3;
  cfg.machine.chip.clock_drift_ppm_sigma = 0.0;
  cfg.mapper.neurons_per_core = 4000;
  System sys(cfg);

  neural::Network net;
  const auto src = net.add_poisson("drive", neurons, input_rate_hz);
  const auto dst = net.add_lif("cells", neurons);
  net.connect(src, dst, neural::Connector::fixed_probability(connect_prob),
              neural::ValueDist::fixed(0.8), neural::ValueDist::fixed(1.0));
  const auto report = sys.load(net);
  if (!report.ok) return CapacityPoint{neurons, 0.0, ~0ull, 0};
  sys.run(200 * kMillisecond);

  const chip::Chip& chip = sys.machine().chip_at({0, 0});
  CapacityPoint p{neurons, 0.0, 0, 0};
  TimeNs busy = 0;
  for (CoreIndex i = 0; i < chip.num_cores(); ++i) {
    busy += chip.core(i).stats().busy_ns;
    p.overruns += chip.core(i).stats().overruns;
  }
  // Two app cores share the work (source + cells); report the busier
  // fraction per core.
  p.cpu_percent = 100.0 * static_cast<double>(busy) / 2.0 /
                  static_cast<double>(sys.now());
  p.spikes = sys.fabric_totals().delivered_local;
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  spinn::bench::Harness h("bench_e11_realtime_capacity", argc, argv);
  std::uint32_t capacity = 0;
  std::uint32_t rt_synapses = 0;
  h.run("neuron_sweep", [&] {
    std::printf("E11: real-time neuron capacity per core, and machine-scale "
                "extrapolation (§1, §6)\n\n");
    std::printf("%-10s %12s %14s %12s\n", "neurons", "core load",
                "overruns", "deadline ok");
    std::printf("%-10s %12s %14s %12s\n", "per core", "(%%)", "(200 ticks)",
                "");

    capacity = 0;
    for (const std::uint32_t n :
         {100u, 250u, 500u, 750u, 1000u, 1250u, 1500u, 2000u, 3000u}) {
      const CapacityPoint p = run_point(n, 10.0);
      const bool ok = p.overruns == 0;
      if (ok) capacity = n;
      std::printf("%-10u %12.1f %14llu %12s\n", p.neurons, p.cpu_percent,
                  static_cast<unsigned long long>(p.overruns),
                  ok ? "yes" : "NO");
    }

    std::printf("\nMeasured real-time capacity: ~%u LIF neurons/core at "
                "10 Hz input, ~%.0f synapses/neuron.\n\n",
                capacity, capacity * 0.05);
  });

  h.run("connectivity_sweep", [&] {
    // The budget is really a synaptic-event budget: richer connectivity
    // eats into the neuron count (the paper's ~1000/core assumes
    // biologically realistic fan-in).
    std::printf("Connectivity sweep at 1000 neurons/core (10 Hz drive):\n");
    std::printf("%-20s %12s %14s %12s\n", "synapses/neuron", "core load",
                "overruns", "deadline ok");
    rt_synapses = 0;
    for (const double p : {0.05, 0.2, 0.5, 1.0}) {
      const CapacityPoint cp = run_point(1000, 10.0, p);
      const auto syn = static_cast<std::uint32_t>(1000 * p);
      if (cp.overruns == 0) rt_synapses = syn;
      std::printf("%-20u %12.1f %14llu %12s\n", syn, cp.cpu_percent,
                  static_cast<unsigned long long>(cp.overruns),
                  cp.overruns == 0 ? "yes" : "NO");
    }
    std::printf("\n1000 neurons/core holds real time up to ~%u "
                "synapses/neuron at 10 Hz mean activity — a synaptic-\n"
                "event budget of ~%.0fM connections/s/core, the same order "
                "as the published SpiNNaker software stack.\nThe paper's "
                "~1000-neuron/core design point holds at biological sparse "
                "activity.\n\n",
                rt_synapses, 1000.0 * rt_synapses * 10.0 / 1e6);

    // Machine-scale arithmetic (paper §1/§6).
    const double cores = 1'036'800.0;  // 57,600 nodes x 18 app cores
    const auto node = energy::spinnaker_node();
    const double total_mips = cores / 20.0 * node.mips;
    std::printf("Extrapolation to the full machine:\n");
    std::printf("  cores:          %.0f (paper: \"more than a million\")\n",
                cores);
    std::printf("  neurons:        %.2e (paper: 10^9 — 1%% of a human "
                "brain)\n",
                cores * capacity);
    std::printf("  throughput:     %.0f teraIPS (paper: \"around 200 "
                "teraIPS\")\n",
                total_mips / 1e6);
    std::printf("  machine power:  %.0f kW at %.1f W/node\n",
                57'600.0 * node.power_watts / 1000.0, node.power_watts);
  });
  h.metric("realtime_neurons_per_core", static_cast<double>(capacity),
           "neurons");
  h.metric("realtime_synapses_per_neuron_at_1000",
           static_cast<double>(rt_synapses), "synapses");
  return h.finish();
}
