// E2 — §5.1: signalling trade-off between the 3-of-6 RTZ and 2-of-7 NRZ
// self-timed codes, on-chip and off-chip.
//
// Paper claims:
//  * off-chip, NRZ "effectively doubl[es] the throughput" (one handshake
//    round trip per symbol instead of two);
//  * off-chip, "the 2-of-7 NRZ code delivers twice the performance for less
//    than half the energy per 4-bit symbol" (3 wire transitions vs 8);
//  * on-chip "the balance is very different, and the simpler logic of the
//    RTZ code dominates the decision on both power and performance."
#include <cstdio>

#include "harness.hpp"
#include "link/codes.hpp"
#include "link/glitch_link.hpp"
#include "link/link_timing.hpp"

namespace {

using namespace spinn;
using namespace spinn::link;

void print_row(const char* env, const char* code, const SymbolCost& c) {
  std::printf("%-10s %-10s %12lld %14.1f %16.2f\n", env, code,
              static_cast<long long>(c.time_per_symbol_ns), c.throughput_mbps,
              c.energy_per_symbol_pj);
}

}  // namespace

int main(int argc, char** argv) {
  spinn::bench::Harness h("bench_e02_link_codes", argc, argv);
  double nrz_throughput_gain = 0.0;
  double measured_mbps = 0.0;
  h.run("code_tradeoffs", [&] {
    std::printf("E2: self-timed code trade-offs (3-of-6 RTZ vs 2-of-7 "
                "NRZ)\n\n");
    std::printf("%-10s %-10s %12s %14s %16s\n", "domain", "code", "ns/symbol",
                "Mb/s", "pJ/4-bit symbol");

    const ChannelParams off = off_chip_channel();
    const ChannelParams on = on_chip_channel();
    const SymbolCost off_rtz = rtz_cost(off);
    const SymbolCost off_nrz = nrz_cost(off);
    const SymbolCost on_rtz = rtz_cost(on);
    const SymbolCost on_nrz = nrz_cost(on);

    print_row("off-chip", "3-of-6 RTZ", off_rtz);
    print_row("off-chip", "2-of-7 NRZ", off_nrz);
    print_row("on-chip", "3-of-6 RTZ", on_rtz);
    print_row("on-chip", "2-of-7 NRZ", on_nrz);

    nrz_throughput_gain = off_nrz.throughput_mbps / off_rtz.throughput_mbps;
    std::printf("\nOff-chip NRZ vs RTZ: throughput x%.2f (paper: x2), energy "
                "x%.2f (paper: <x0.5)\n",
                nrz_throughput_gain,
                off_nrz.energy_per_symbol_pj / off_rtz.energy_per_symbol_pj);
    std::printf("On-chip RTZ vs NRZ: energy x%.2f (RTZ cheaper: paper says "
                "simpler RTZ logic wins on-chip)\n\n",
                on_rtz.energy_per_symbol_pj / on_nrz.energy_per_symbol_pj);

    std::printf("Wire transitions per 4-bit symbol: RTZ %d (paper: 8), NRZ "
                "%d (paper: 3)\n",
                ThreeOfSixRtz::data_transitions_per_symbol() +
                    ThreeOfSixRtz::ack_transitions_per_symbol(),
                TwoOfSevenNrz::data_transitions_per_symbol() +
                    TwoOfSevenNrz::ack_transitions_per_symbol());

    // Cross-check the analytic throughput against the event-driven link
    // (step until the stream completes; don't count idle tail time).
    sim::Simulator sim(1);
    GlitchLinkConfig cfg;  // clean link
    GlitchLink glink(sim, cfg, 99);
    const std::uint64_t n = 100'000;
    glink.start(n);
    while (glink.stats().delivered < n && sim.queue().step()) {
    }
    measured_mbps = static_cast<double>(n) * 4.0 /
                    (static_cast<double>(sim.now()) * 1e-9) / 1e6;
    std::printf("\nEvent-driven NRZ link cross-check: %.1f Mb/s sustained "
                "(analytic %.1f Mb/s, real chip ~250 Mb/s)\n",
                measured_mbps, off_nrz.throughput_mbps);
  });
  h.metric("offchip_nrz_vs_rtz_throughput_x", nrz_throughput_gain);
  h.metric("event_driven_nrz_mbps", measured_mbps, "Mb/s");
  return h.finish();
}
