// E1 — §5.1 / Fig. 6: glitch-induced deadlock, conventional XOR phase
// conversion vs the transition-sensing circuit.
//
// Paper claim: "This circuit, together with a number of other circuit
// enhancements, has reduced the occurrence of deadlocks in our glitch
// simulations by a factor 1,000, indicating that the circuit will keep
// passing data (albeit with errors) in the presence of quite high levels of
// interference on the inter-chip wires."
//
// We stream symbols over the modelled 2-of-7 NRZ link while injecting
// Poisson glitches on all eight wires, and count deadlocks per million
// symbols for both converter designs across a sweep of glitch rates.
#include <cstdio>
#include <string>

#include "harness.hpp"
#include "link/glitch_link.hpp"

namespace {

using namespace spinn;
using link::GlitchLink;
using link::GlitchLinkConfig;
using link::PhaseConverter;

struct Outcome {
  double deadlocks_per_msymbol;
  double corrupt_percent;
  std::uint64_t symbols;
};

Outcome measure(PhaseConverter::Kind kind, double rate_hz, int trials,
                std::uint64_t symbols_per_trial) {
  std::uint64_t deadlocks = 0;
  std::uint64_t symbols = 0;
  std::uint64_t corrupted = 0;
  for (int t = 0; t < trials; ++t) {
    sim::Simulator sim(static_cast<std::uint64_t>(t) * 7919 + 13);
    GlitchLinkConfig cfg;
    cfg.kind = kind;
    cfg.glitch_rate_hz = rate_hz;
    GlitchLink glink(sim, cfg, static_cast<std::uint64_t>(t) * 104729 + 7);
    glink.start(symbols_per_trial);
    sim.run_until(static_cast<TimeNs>(symbols_per_trial) *
                      glink.symbol_period() * 4 +
                  kMillisecond);
    if (glink.deadlocked()) ++deadlocks;
    symbols += glink.stats().delivered;
    corrupted += glink.stats().corrupted;
  }
  const double msym = static_cast<double>(symbols) / 1e6;
  return Outcome{msym > 0 ? static_cast<double>(deadlocks) / msym : 0.0,
                 symbols ? 100.0 * static_cast<double>(corrupted) /
                               static_cast<double>(symbols)
                         : 0.0,
                 symbols};
}

}  // namespace

int main(int argc, char** argv) {
  spinn::bench::Harness h("bench_e01_phase_converter", argc, argv);
  double mean_reduction = 0.0;
  h.run("glitch_sweep", [&] {
    std::printf("E1: glitch-induced deadlock — conventional XOR vs Fig. 6 "
                "transition-sensing phase converter\n");
    std::printf("Paper claim: transition sensing reduces deadlocks by ~x1000 "
                "and keeps passing data (with errors).\n\n");
    std::printf("%-14s %22s %22s %12s %16s\n", "glitch rate", "conventional",
                "transition-sensing", "reduction", "sensing errors");
    std::printf("%-14s %22s %22s %12s %16s\n", "(Hz/wire)",
                "(deadlocks/Msym)", "(deadlocks/Msym)", "(x)", "(% symbols)");

    const int trials = 60;
    const std::uint64_t symbols = 20'000;
    double ratio_sum = 0.0;
    int ratio_count = 0;
    for (const double rate : {1e5, 3e5, 1e6, 3e6, 1e7}) {
      const Outcome conv = measure(PhaseConverter::Kind::ConventionalXor,
                                   rate, trials, symbols);
      const Outcome sens = measure(PhaseConverter::Kind::TransitionSensing,
                                   rate, trials, symbols);
      const double ratio = sens.deadlocks_per_msymbol > 0
                               ? conv.deadlocks_per_msymbol /
                                     sens.deadlocks_per_msymbol
                               : 0.0;
      if (ratio > 0) {
        ratio_sum += ratio;
        ++ratio_count;
      }
      std::printf("%-14.0f %22.2f %22.3f %12s %16.2f\n", rate,
                  conv.deadlocks_per_msymbol, sens.deadlocks_per_msymbol,
                  ratio > 0 ? std::to_string(static_cast<long>(ratio)).c_str()
                            : ">measured",
                  sens.corrupt_percent);
    }
    if (ratio_count > 0) {
      mean_reduction = ratio_sum / ratio_count;
      std::printf("\nMean measured reduction factor: x%.0f  (paper: ~x1000)\n",
                  mean_reduction);
    }
    std::printf("Mechanism: conventional converters lose the handshake token "
                "when a runt pulse flips the phase\nreference; the "
                "transition-sensing circuit converts glitches into data "
                "errors and is vulnerable only\nduring its enable-gate "
                "switching window (~2 ps/capture).\n");
  });
  h.metric("mean_deadlock_reduction_x", mean_reduction);
  return h.finish();
}
