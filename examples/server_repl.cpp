// server_repl: a line-protocol transport for the session server.
//
// Reads one command per line from stdin (or from a script file given as
// argv[1], echoing each command) and prints one response block per command.
// This is deliberately the thinnest possible transport — the session
// subsystem (src/server/) is the point; swapping stdio for a socket is a
// framing exercise.  Protocol reference: docs/SERVER.md.
//
//   $ ./server_repl                 # interactive
//   $ ./server_repl script.txt      # scripted transcript
//
// Commands:
//   open [key=value ...]   create a session (width, height, cores, app,
//                          seed, engine, shards, threads, neurons_per_core,
//                          scatter, boot, link_flight_ns)
//   run <id> <bio ms>      queue biological time (asynchronous)
//   wait <id>              block until the session is idle
//   drain <id>             fetch spikes recorded since the last drain
//   status <id>            lifecycle state, bio time, spike counters
//   close <id>             tear the session down
//   stats                  server + engine-pool counters
//   apps                   list registered applications
//   help                   this summary
//   quit                   exit
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/spinnaker.hpp"

namespace {

using namespace spinn;

void print_help() {
  std::printf(
      "commands: open [key=value ...] | run <id> <ms> | wait <id> | "
      "drain <id> |\n          status <id> | close <id> | stats | apps | "
      "help | quit\n");
}

bool parse_id(const std::string& tok, server::SessionId* id) {
  try {
    *id = std::stoull(tok);
    return true;
  } catch (...) {
    return false;
  }
}

void cmd_open(server::SessionServer& srv,
              const std::vector<std::string>& args) {
  server::SessionSpec spec;
  std::string error;
  for (std::size_t i = 1; i < args.size(); ++i) {
    const auto eq = args[i].find('=');
    if (eq == std::string::npos) {
      std::printf("err expected key=value, got '%s'\n", args[i].c_str());
      return;
    }
    if (!server::apply_kv(spec, args[i].substr(0, eq), args[i].substr(eq + 1),
                          &error)) {
      std::printf("err %s\n", error.c_str());
      return;
    }
  }
  const auto id = srv.open(spec, &error);
  if (id == server::kInvalidSession) {
    std::printf("err %s\n", error.c_str());
    return;
  }
  std::printf("ok id=%llu\n", static_cast<unsigned long long>(id));
}

void cmd_status(server::SessionServer& srv, server::SessionId id) {
  const auto st = srv.status(id);
  if (st.id == server::kInvalidSession) {
    std::printf("err unknown session\n");
    return;
  }
  std::printf("id=%llu state=%s%s t=%.1fms target=%.1fms spikes=%zu "
              "drained=%zu%s%s\n",
              static_cast<unsigned long long>(st.id), to_string(st.state),
              st.evicted ? " (evicted)" : "",
              static_cast<double>(st.bio_now) / kMillisecond,
              static_cast<double>(st.bio_target) / kMillisecond,
              st.spikes_recorded, st.spikes_drained,
              st.error.empty() ? "" : " error=", st.error.c_str());
}

void cmd_drain(server::SessionServer& srv, server::SessionId id) {
  const auto events = srv.drain(id);
  std::printf("spikes %zu\n", events.size());
  if (!events.empty()) {
    const auto& first = events.front();
    const auto& last = events.back();
    std::printf("  first t=%.3fms key=0x%x\n",
                static_cast<double>(first.time) / kMillisecond, first.key);
    std::printf("  last  t=%.3fms key=0x%x\n",
                static_cast<double>(last.time) / kMillisecond, last.key);
  }
}

void cmd_stats(server::SessionServer& srv) {
  const auto st = srv.stats();
  std::printf("sessions opened=%llu closed=%llu evicted=%llu rejected=%llu "
              "resident=%zu\n",
              static_cast<unsigned long long>(st.opened),
              static_cast<unsigned long long>(st.closed),
              static_cast<unsigned long long>(st.evicted),
              static_cast<unsigned long long>(st.rejected), st.resident);
  std::printf("engines created=%llu reused=%llu idle=%zu\n",
              static_cast<unsigned long long>(st.engines.created),
              static_cast<unsigned long long>(st.engines.reused),
              st.engines.idle);
}

bool handle(server::SessionServer& srv, const std::string& line) {
  std::istringstream ss(line);
  std::vector<std::string> args;
  for (std::string tok; ss >> tok;) args.push_back(tok);
  if (args.empty()) return true;
  const std::string& cmd = args[0];
  if (cmd == "quit" || cmd == "exit") return false;
  if (cmd == "help") {
    print_help();
    return true;
  }
  if (cmd == "apps") {
    for (const auto& name : server::app_names()) {
      std::printf("%s ", name.c_str());
    }
    std::printf("\n");
    return true;
  }
  if (cmd == "stats") {
    cmd_stats(srv);
    return true;
  }
  if (cmd == "open") {
    cmd_open(srv, args);
    return true;
  }
  // Everything below addresses a session: <cmd> <id> [...].
  server::SessionId id = server::kInvalidSession;
  if (args.size() < 2 || !parse_id(args[1], &id)) {
    std::printf("err usage: %s <id> ...\n", cmd.c_str());
    return true;
  }
  if (cmd == "run") {
    TimeNs duration = 0;
    if (args.size() < 3 || !server::parse_run_ms(args[2], &duration)) {
      std::printf("err usage: run <id> <bio ms in (0, 1e9]>\n");
      return true;
    }
    std::printf(srv.run(id, duration) ? "ok\n"
                                      : "err unknown or closed session\n");
  } else if (cmd == "wait") {
    if (!srv.wait(id)) {
      std::printf("err unknown session\n");
      return true;
    }
    std::printf("ok t=%.1fms\n",
                static_cast<double>(srv.status(id).bio_now) / kMillisecond);
  } else if (cmd == "drain") {
    cmd_drain(srv, id);
  } else if (cmd == "status") {
    cmd_status(srv, id);
  } else if (cmd == "close") {
    std::printf(srv.close(id) ? "ok\n" : "err unknown or already closed\n");
  } else {
    std::printf("err unknown command '%s' (try 'help')\n", cmd.c_str());
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::ifstream script;
  const bool scripted = argc > 1;
  if (scripted) {
    script.open(argv[1]);
    if (!script) {
      std::fprintf(stderr, "cannot open script %s\n", argv[1]);
      return 1;
    }
  }
  std::istream& in = scripted ? static_cast<std::istream&>(script) : std::cin;

  server::ServerConfig cfg;
  cfg.workers = 2;
  server::SessionServer srv(cfg);
  std::printf("spinnaker session server — %u workers, %zu session slots "
              "(type 'help')\n",
              cfg.workers, cfg.max_sessions);

  for (std::string line; std::getline(in, line);) {
    if (scripted) std::printf("> %s\n", line.c_str());
    if (!line.empty() && line[0] == '#') continue;
    if (!handle(srv, line)) break;
  }
  return 0;
}
