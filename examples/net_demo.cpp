// net_demo: the socket transport end-to-end.
//
// Starts a NetServer on an ephemeral loopback port and walks the client
// idioms against it — synchronous request/response, an explicit batch
// frame (one round-trip for a whole session lifecycle, `$` binding the
// freshly-opened id), pipelined frames with several sessions in flight,
// and a client-described network (the `net ... end` block + `open app=@`:
// an arbitrary PyNN-style net submitted over the wire instead of naming a
// built-in app) — then drives 8 concurrent connections and verifies every
// spike stream delivered over the wire is bit-identical to the same spec
// run standalone.  The printed output is pinned as a golden test: spike
// counts and times are properties of the specs, not of scheduling, port
// choice or connection interleaving.
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/spinnaker.hpp"

namespace {

using namespace spinn;
using Events = std::vector<neural::SpikeRecorder::Event>;

bool same_events(const Events& a, const Events& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].time != b[i].time || a[i].key != b[i].key) return false;
  }
  return true;
}

void print_stream(const char* label, const Events& events) {
  std::printf("%s: %zu spikes", label, events.size());
  if (!events.empty()) {
    std::printf(" (first t=%.3fms key=0x%x, last t=%.3fms key=0x%x)",
                static_cast<double>(events.front().time) / kMillisecond,
                events.front().key,
                static_cast<double>(events.back().time) / kMillisecond,
                events.back().key);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  net::NetConfig cfg;
  cfg.session.workers = 2;
  cfg.session.max_sessions = 16;
  net::NetServer srv(cfg);
  std::printf("net_demo: session server on a loopback socket — "
              "%u workers, %zu session slots\n\n",
              cfg.session.workers, cfg.session.max_sessions);

  // --- 1. synchronous request/response -------------------------------------
  std::printf("[1] sync requests, one command per round-trip\n");
  net::Client sync_client(srv.port());
  std::printf("ping -> %s\n", sync_client.request("ping").c_str());
  std::printf("apps -> %s\n", sync_client.request("apps").c_str());
  server::SessionId id = server::kInvalidSession;
  net::parse_open_id(sync_client.request("open app=chain seed=7"), &id);
  sync_client.request("run " + std::to_string(id) + " 20");
  sync_client.request("wait " + std::to_string(id));
  Events chain_stream;
  net::parse_spikes(sync_client.request("drain " + std::to_string(id)),
                    &chain_stream);
  print_stream("chain seed=7, 20 ms", chain_stream);
  sync_client.request("close " + std::to_string(id));

  // --- 2. one batch frame = one whole lifecycle ----------------------------
  std::printf("\n[2] batch frame: open; run; wait; drain; close in one "
              "round-trip ($ = the opened id)\n");
  const auto blocks = net::Client::split_response(sync_client.batch(
      {"open app=noise engine=sharded shards=4 threads=2 seed=42",
       "run $ 15", "wait $", "drain $", "close $"}));
  std::printf("batch of 5 commands -> %zu response blocks\n", blocks.size());
  Events noise_stream;
  if (blocks.size() == 5) net::parse_spikes(blocks[3], &noise_stream);
  print_stream("noise seed=42 sharded, 15 ms", noise_stream);

  // --- 3. pipelining: several sessions in flight on one connection ---------
  std::printf("\n[3] pipelined batches: 4 sessions in flight on one "
              "connection\n");
  net::Client pipeline_client(srv.port());
  for (std::uint64_t seed = 100; seed < 104; ++seed) {
    pipeline_client.send("open app=noise seed=" + std::to_string(seed) +
                         "\nrun $ 10\nwait $\ndrain $\nclose $");
  }
  for (std::uint64_t seed = 100; seed < 104; ++seed) {
    const auto b = net::Client::split_response(pipeline_client.receive());
    Events stream;
    if (b.size() == 5) net::parse_spikes(b[3], &stream);
    std::printf("  seed=%llu: %zu spikes\n",
                static_cast<unsigned long long>(seed), stream.size());
  }

  // --- 4. concurrent connections, the determinism contract -----------------
  std::printf("\n[4] 8 concurrent connections, mixed engines, verified "
              "against standalone runs\n");
  struct Job {
    server::SessionSpec spec;
    Events stream;
  };
  std::vector<Job> jobs;
  for (std::uint64_t i = 0; i < 8; ++i) {
    Job job;
    job.spec.app = i % 2 == 0 ? "noise" : "chain";
    job.spec.seed = 7000 + i;
    if (i % 4 == 2) {
      job.spec.engine = sim::EngineKind::Sharded;
      job.spec.shards = 2;
      job.spec.threads = 2;
    }
    jobs.push_back(std::move(job));
  }
  std::vector<std::thread> workers;
  workers.reserve(jobs.size());
  for (auto& job : jobs) {
    workers.emplace_back([&srv, &job] {
      std::string open = "open app=" + job.spec.app +
                         " seed=" + std::to_string(job.spec.seed);
      if (job.spec.engine == sim::EngineKind::Sharded) {
        open += " engine=sharded shards=2 threads=2";
      }
      net::Client c(srv.port());
      const auto b = net::Client::split_response(
          c.batch({open, "run $ 12", "wait $", "drain $", "close $"}));
      if (b.size() == 5) net::parse_spikes(b[3], &job.stream);
    });
  }
  for (auto& t : workers) t.join();
  int identical = 0;
  for (const auto& job : jobs) {
    if (same_events(job.stream,
                    server::run_standalone(job.spec, 12 * kMillisecond))) {
      ++identical;
    }
  }
  std::printf("%d/%zu socket streams bit-identical to standalone\n",
              identical, jobs.size());

  // --- 5. a client-described net: the wire-format front door ---------------
  std::printf("\n[5] client-described net: net ... end + open app=@ in one "
              "batch\n");
  net::NetBuilder builder;
  builder.spike_source("stim", {{1, 6}, {3}});
  builder.poisson("bg", 24, 30.0);
  builder.lif("cells", 40).v_thresh = -54.0;
  builder.project("stim", "cells", neural::Connector::all_to_all(),
                  neural::ValueDist::fixed(15.0),
                  neural::ValueDist::fixed(1.0));
  builder.project("bg", "cells", neural::Connector::fixed_probability(0.25),
                  neural::ValueDist::uniform(2.0, 6.0),
                  neural::ValueDist::fixed(1.0));
  builder.project("cells", "cells",
                  neural::Connector::fixed_probability(0.08),
                  neural::ValueDist::fixed(1.5),
                  neural::ValueDist::fixed(2.0), /*inhibitory=*/true);
  std::vector<std::string> net_lines = builder.lines();
  net_lines.push_back("open app=@ seed=77");
  net_lines.push_back("run $ 15");
  net_lines.push_back("wait $");
  net_lines.push_back("drain $");
  net_lines.push_back("close $");
  const auto net_blocks =
      net::Client::split_response(sync_client.batch(net_lines));
  Events custom_stream;
  if (net_blocks.size() == 6) {
    std::printf("net block -> %s\n", net_blocks[0].c_str());
    net::parse_spikes(net_blocks[4], &custom_stream);
  }
  print_stream("custom net seed=77, 15 ms", custom_stream);
  server::SessionSpec custom_spec;
  custom_spec.seed = 77;
  custom_spec.net = std::make_shared<const neural::NetworkDescription>(
      builder.description());
  const bool custom_identical = same_events(
      custom_stream, server::run_standalone(custom_spec, 15 * kMillisecond));
  std::printf("wire stream vs embedded build of the same description: %s\n",
              custom_identical ? "bit-identical" : "MISMATCH");

  // --- 6. the books --------------------------------------------------------
  const auto net_stats = srv.stats();
  const auto sess = srv.sessions().stats();
  std::printf("\nnet: accepted=%llu shed_slow=%llu shed_flood=%llu "
              "batches=%llu\n",
              static_cast<unsigned long long>(net_stats.accepted),
              static_cast<unsigned long long>(net_stats.shed_slow),
              static_cast<unsigned long long>(net_stats.shed_flood),
              static_cast<unsigned long long>(net_stats.batches));
  std::printf("sessions: opened=%llu closed=%llu evicted=%llu "
              "rejected=%llu resident=%zu\n",
              static_cast<unsigned long long>(sess.opened),
              static_cast<unsigned long long>(sess.closed),
              static_cast<unsigned long long>(sess.evicted),
              static_cast<unsigned long long>(sess.rejected), sess.resident);
  return identical == static_cast<int>(jobs.size()) && custom_identical
             ? 0
             : 1;
}
