// Quickstart: build a small SpiNNaker machine, boot it, load a little
// excitatory/inhibitory spiking network, run it in biological real time and
// inspect the results.
//
//   $ ./quickstart
//
// This walks the whole public API surface in ~60 lines of user code.
#include <cstdio>

#include "core/spinnaker.hpp"

int main() {
  using namespace spinn;

  // --- 1. Describe the machine: a 2x2 torus of 18-core chips. -------------
  SystemConfig cfg;
  cfg.machine.width = 2;
  cfg.machine.height = 2;
  cfg.machine.chip.num_cores = 18;
  cfg.machine.seed = 42;
  System sys(cfg);

  // --- 2. Boot it (self-test, monitor election, coordinate flood, p2p
  //        tables, flood-fill application load — §5.2 of the paper). ------
  const boot::BootReport boot = sys.boot();
  std::printf("booted: %zu chips alive, load finished at t=%.2f ms\n",
              boot.chips_alive,
              static_cast<double>(boot.load_done) / kMillisecond);

  // --- 3. Describe a network, PyNN-style. ----------------------------------
  neural::Network net;
  const auto noise = net.add_poisson("noise", 100, 40.0);   // 100 x 40 Hz
  const auto exc = net.add_lif("exc", 200);
  const auto inh = net.add_lif("inh", 50);
  net.connect(noise, exc, neural::Connector::fixed_probability(0.2),
              neural::ValueDist::uniform(4.0, 8.0),
              neural::ValueDist::fixed(1.0));
  net.connect(exc, inh, neural::Connector::fixed_probability(0.1),
              neural::ValueDist::fixed(3.0),
              neural::ValueDist::uniform(1.0, 4.0));
  net.connect(inh, exc, neural::Connector::fixed_probability(0.1),
              neural::ValueDist::fixed(6.0), neural::ValueDist::fixed(1.0),
              /*inhibitory=*/true);

  // --- 4. Place, route and load it onto the machine. -----------------------
  const map::LoadReport load = sys.load(net);
  if (!load.ok) {
    std::printf("load failed: %s\n", load.error.c_str());
    return 1;
  }
  std::printf("loaded: %zu cores on %zu chips, %llu synapses in %llu rows, "
              "%.1f kB SDRAM, %llu routing entries\n",
              load.placement.cores_used, load.placement.chips_used,
              static_cast<unsigned long long>(load.total_synapses),
              static_cast<unsigned long long>(load.total_rows),
              static_cast<double>(load.sdram_bytes) / 1024.0,
              static_cast<unsigned long long>(load.routing.entries_total));

  // --- 5. Run one biological second. ---------------------------------------
  sys.run(1000 * kMillisecond);

  // --- 6. Inspect spikes, fabric and energy. --------------------------------
  const auto exc_base =
      load.placement.slices[load.placement.by_population[exc][0]].key_base;
  const auto inh_base =
      load.placement.slices[load.placement.by_population[inh][0]].key_base;
  std::printf("\nspikes recorded: %zu total\n", sys.spikes().count());
  std::printf("  exc rate: %.1f Hz/neuron\n",
              static_cast<double>(
                  sys.spikes().count_in_key_range(exc_base, 1 << 11)) /
                  200.0);
  std::printf("  inh rate: %.1f Hz/neuron\n",
              static_cast<double>(
                  sys.spikes().count_in_key_range(inh_base, 1 << 11)) /
                  50.0);

  const auto fabric = sys.fabric_totals();
  std::printf("\nfabric: %llu packets routed, %llu crossed chips, %llu "
              "dropped, %llu emergency-routed\n",
              static_cast<unsigned long long>(fabric.received),
              static_cast<unsigned long long>(fabric.forwarded),
              static_cast<unsigned long long>(fabric.dropped),
              static_cast<unsigned long long>(fabric.emergency_first_leg));

  const auto energy = sys.energy();
  std::printf("\nenergy: %.2f mJ total over 1 s -> %.1f mW average "
              "(cores %.2f mJ active / %.2f mJ sleeping, fabric %.3f mJ, "
              "SDRAM %.3f mJ)\n",
              energy.total_j() * 1e3, energy.average_watts(sys.now()) * 1e3,
              energy.core_active_j * 1e3, energy.core_sleep_j * 1e3,
              energy.fabric_j * 1e3, energy.sdram_j * 1e3);
  return 0;
}
