// Runtime fault mitigation (paper abstract: "run-time support for
// functional migration and real-time fault mitigation"): a population is
// running on a core that starts failing; the monitor migrates the slice —
// program, neuron state, synaptic rows, AER identity — to a spare core and
// rewrites the machine's routing tables.  The rest of the network never
// notices: same keys, same connectivity, barely a blip in the firing rate.
//
//   $ ./fault_mitigation
#include <cstdio>

#include "core/spinnaker.hpp"
#include "map/migration.hpp"

int main() {
  using namespace spinn;

  SystemConfig cfg;
  cfg.machine.width = 2;
  cfg.machine.height = 2;
  cfg.machine.chip.num_cores = 8;
  cfg.mapper.neurons_per_core = 64;
  System sys(cfg);

  neural::Network net;
  const auto drive = net.add_poisson("drive", 64, 40.0);
  const auto cells = net.add_lif("cells", 64);
  net.population(cells).record = true;
  net.connect(drive, cells, neural::Connector::fixed_probability(0.3),
              neural::ValueDist::fixed(3.0), neural::ValueDist::fixed(1.0));
  auto report = sys.load(net);
  if (!report.ok) {
    std::printf("load failed: %s\n", report.error.c_str());
    return 1;
  }

  const auto cells_slice_index = report.placement.by_population[cells][0];
  const auto base =
      report.placement.slices[cells_slice_index].key_base;
  auto rate_since = [&](std::size_t from_count, TimeNs window) {
    const auto now_count = sys.spikes().count_in_key_range(base, 1u << 11);
    return (static_cast<double>(now_count - from_count)) /
           (static_cast<double>(window) / kSecond) / 64.0;
  };

  std::printf("fault-mitigation demo: population 'cells' (64 LIF) under "
              "40 Hz drive\n\n");

  // Healthy phase.
  std::size_t mark = 0;
  sys.run(200 * kMillisecond);
  std::printf("t=200ms  healthy:            %5.1f Hz/neuron on core %s\n",
              rate_since(mark, 200 * kMillisecond),
              [&] {
                static char buf[32];
                const CoreId c = report.placement.slices[cells_slice_index].core;
                std::snprintf(buf, sizeof buf, "(%u,%u):%u", c.chip.x,
                              c.chip.y, c.core);
                return buf;
              }());

  // The core starts failing: the monitor migrates the slice away.
  mark = sys.spikes().count_in_key_range(base, 1u << 11);
  map::Migrator migrator(net, report.placement, cfg.mapper);
  const CoreId victim = report.placement.slices[cells_slice_index].core;
  const auto migration = migrator.migrate(sys.machine(), victim);
  if (!migration.ok) {
    std::printf("migration failed: %s\n", migration.error.c_str());
    return 1;
  }
  std::printf("t=200ms  MIGRATION: (%u,%u):%u -> (%u,%u):%u — %llu routing "
              "entries rewritten on %zu routers\n",
              migration.from.chip.x, migration.from.chip.y,
              migration.from.core, migration.to.chip.x, migration.to.chip.y,
              migration.to.core,
              static_cast<unsigned long long>(migration.entries_written),
              migration.routers_rewritten);

  sys.run(200 * kMillisecond);
  std::printf("t=400ms  after migration:    %5.1f Hz/neuron on core "
              "(%u,%u):%u\n",
              rate_since(mark, 200 * kMillisecond), migration.to.chip.x,
              migration.to.chip.y, migration.to.core);

  // Physically fail the vacated core to show the network no longer
  // depends on it.
  sys.machine().chip_at(victim.chip).core(victim.core).mark_failed();
  mark = sys.spikes().count_in_key_range(base, 1u << 11);
  sys.run(200 * kMillisecond);
  std::printf("t=600ms  old core dead:      %5.1f Hz/neuron (unaffected)\n",
              rate_since(mark, 200 * kMillisecond));

  std::printf("\nThe population kept its AER keys and synaptic rows through "
              "the move — \"virtualised topology\"\n(§3.2) is what makes "
              "this kind of real-time fault mitigation possible: the "
              "logical network never\nlearns that its physical home "
              "changed.\n");
  return 0;
}
