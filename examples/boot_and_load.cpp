// A narrated run of the §5.2 distributed boot: self-test and monitor
// election on every chip, neighbour rescue of a transiently-failed node,
// the (0,0) coordinate flood over nn packets, per-chip p2p table builds,
// and the flood-fill application load — on a machine with one chip that is
// stone dead.
//
//   $ ./boot_and_load
#include <cstdio>

#include "core/spinnaker.hpp"

int main() {
  using namespace spinn;

  sim::Simulator sim(21);
  mesh::MachineConfig mc;
  mc.width = 8;
  mc.height = 8;
  mc.chip.num_cores = 18;
  mesh::Machine machine(sim, mc);

  // One chip is permanently dead; another has every core transiently
  // failing self-test (rescuable by its neighbours).
  machine.fail_chip({5, 2});
  chip::Chip& flaky = machine.chip_at({2, 6});
  for (CoreIndex i = 0; i < flaky.num_cores(); ++i) {
    flaky.core(i).mark_failed();
  }

  boot::BootConfig bc;
  bc.image_blocks = 32;
  bc.words_per_block = 64;
  bc.redundancy = 2;
  bc.block_loss_prob = 0.05;
  bc.rescue_success_prob = 1.0;

  boot::BootController controller(sim, machine, bc);
  boot::BootReport report;
  bool done = false;
  controller.start([&](const boot::BootReport& r) {
    report = r;
    done = true;
  });
  while (!done && !sim.queue().empty() && sim.now() < 60 * kSecond) {
    sim.queue().step();
  }
  if (!done) report = controller.report();

  auto ms = [](TimeNs t) { return static_cast<double>(t) / kMillisecond; };
  std::printf("distributed boot of an 8x8 machine (64 chips, 18 cores "
              "each); chip (5,2) dead, chip (2,6) flaky\n\n");
  std::printf("phase timeline:\n");
  std::printf("  %-44s t=%8.3f ms\n", "self-test + monitor elections done",
              ms(report.elections_done));
  std::printf("  %-44s t=%8.3f ms\n", "coordinates flooded from (0,0)",
              ms(report.coords_done));
  std::printf("  %-44s t=%8.3f ms\n", "p2p routing tables built",
              ms(report.p2p_done));
  std::printf("  %-44s t=%8.3f ms\n", "flood-fill application load complete",
              ms(report.load_done));

  std::printf("\noutcome: %zu chips alive (%zu rescued by neighbours, %zu "
              "dead), %llu nn packets, %llu duplicate\nblocks absorbed, "
              "%llu lossy transfers survived, complete=%s\n",
              report.chips_alive, report.chips_rescued, report.chips_dead,
              static_cast<unsigned long long>(report.nn_packets_sent),
              static_cast<unsigned long long>(report.duplicate_blocks),
              static_cast<unsigned long long>(report.blocks_lost),
              report.complete ? "yes" : "no");

  // Show a couple of per-chip facts.
  std::printf("\nspot checks:\n");
  std::printf("  (2,6) booted after rescue: %s, monitor core %d\n",
              controller.chip_booted({2, 6}) ? "yes" : "no",
              machine.chip_at({2, 6}).monitor_core().has_value()
                  ? static_cast<int>(*machine.chip_at({2, 6}).monitor_core())
                  : -1);
  std::printf("  (5,2) stayed dead and was skipped: booted=%s\n",
              controller.chip_booted({5, 2}) ? "yes" : "no");
  const auto assigned = controller.assigned_coord({7, 7});
  std::printf("  (7,7) self-assigned coordinates: %s\n",
              assigned.has_value() && *assigned == ChipCoord{7, 7}
                  ? "(7,7) — correct"
                  : "WRONG");
  std::printf("  p2p hop from (7,7) towards (0,0): %d (0=E 1=NE 2=N 3=W "
              "4=SW 5=S)\n",
              static_cast<int>(machine.chip_at({7, 7})
                                   .router()
                                   .p2p_table()
                                   .get(make_p2p_address({0, 0}))));
  return 0;
}
