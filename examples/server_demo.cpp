// Server demo: ten concurrent sessions, one resident process.
//
// Opens 10 sessions on a SessionServer — mixed apps, seeds and engines
// (serial and sharded) — runs them all concurrently on 4 workers while
// polling incremental spike drains, then re-runs every spec standalone and
// verifies each session's streamed spikes are bit-identical to the
// standalone reference.  This is the acceptance demo for the session
// subsystem: multiplexing, engine pooling and slicing change *nothing*
// observable.
//
//   $ ./server_demo
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "core/spinnaker.hpp"

int main() {
  using namespace spinn;
  using server::SessionSpec;

  constexpr TimeNs kRun = 25 * kMillisecond;

  // --- 1. Describe ten sessions: app x seed x engine. ----------------------
  struct Job {
    const char* app;
    std::uint64_t seed;
    sim::EngineKind engine;
    std::uint32_t shards;
  };
  const Job jobs[] = {
      {"noise", 1, sim::EngineKind::Serial, 0},
      {"noise", 1, sim::EngineKind::Sharded, 4},
      {"noise", 2, sim::EngineKind::Sharded, 2},
      {"chain", 3, sim::EngineKind::Serial, 0},
      {"chain", 3, sim::EngineKind::Sharded, 8},
      {"stdp", 4, sim::EngineKind::Serial, 0},
      {"stdp", 4, sim::EngineKind::Sharded, 4},
      {"noise", 5, sim::EngineKind::Serial, 0},
      {"chain", 6, sim::EngineKind::Sharded, 2},
      {"stdp", 7, sim::EngineKind::Sharded, 2},
  };
  std::vector<SessionSpec> specs;
  for (const Job& j : jobs) {
    SessionSpec spec;
    spec.app = j.app;
    spec.seed = j.seed;
    spec.engine = j.engine;
    spec.shards = j.shards;
    spec.threads = j.engine == sim::EngineKind::Sharded ? 2 : 0;
    specs.push_back(spec);
  }

  // --- 2. One long-lived server; all ten sessions in flight at once. ------
  server::ServerConfig cfg;
  cfg.workers = 4;
  cfg.max_sessions = specs.size();
  server::SessionServer srv(cfg);

  std::vector<server::SessionId> ids;
  for (const auto& spec : specs) {
    std::string error;
    const auto id = srv.open(spec, &error);
    if (id == server::kInvalidSession) {
      std::printf("open failed: %s\n", error.c_str());
      return 1;
    }
    srv.run(id, kRun);
    ids.push_back(id);
  }
  std::printf("opened %zu concurrent sessions on %u workers\n", ids.size(),
              cfg.workers);

  // --- 3. Stream spikes while they run. ------------------------------------
  std::vector<std::vector<neural::SpikeRecorder::Event>> streams(ids.size());
  for (bool busy = true; busy;) {
    busy = false;
    for (std::size_t i = 0; i < ids.size(); ++i) {
      const auto batch = srv.drain(ids[i]);
      streams[i].insert(streams[i].end(), batch.begin(), batch.end());
      if (srv.status(ids[i]).bio_now < kRun) busy = true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const auto tail = srv.drain(ids[i]);
    streams[i].insert(streams[i].end(), tail.begin(), tail.end());
  }

  // --- 4. Verify every stream against a standalone run of the same spec. --
  std::printf("\n%-4s %-6s %-8s %7s %9s %6s\n", "id", "app", "engine",
              "spikes", "bio(ms)", "match");
  std::size_t matches = 0;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const auto reference = server::run_standalone(specs[i], kRun);
    const bool match =
        streams[i].size() == reference.size() &&
        std::equal(streams[i].begin(), streams[i].end(), reference.begin(),
                   [](const auto& a, const auto& b) {
                     return a.time == b.time && a.key == b.key;
                   });
    matches += match ? 1u : 0u;
    const auto st = srv.status(ids[i]);
    std::printf("%-4llu %-6s %-8s %7zu %9.0f %6s\n",
                static_cast<unsigned long long>(ids[i]), specs[i].app.c_str(),
                specs[i].engine == sim::EngineKind::Sharded ? "sharded"
                                                            : "serial",
                streams[i].size(),
                static_cast<double>(st.bio_now) / kMillisecond,
                match ? "yes" : "NO");
    srv.close(ids[i]);
  }

  const auto stats = srv.stats();
  std::printf("\n%zu/%zu session spike streams bit-identical to standalone "
              "runs\n",
              matches, ids.size());
  std::printf("server: %llu opened, %llu closed, engines %llu created / %llu "
              "reused from pool\n",
              static_cast<unsigned long long>(stats.opened),
              static_cast<unsigned long long>(stats.closed),
              static_cast<unsigned long long>(stats.engines.created),
              static_cast<unsigned long long>(stats.engines.reused));
  return matches == ids.size() ? 0 : 1;
}
