// §5.4 end to end: a retina with Mexican-hat receptive fields encodes an
// image as a rank-order spike volley; the volley is replayed through the
// *simulated machine* as AER multicast packets; the spike train recorded on
// the far side is decoded back into an image.  Then ganglion cells are
// killed and the whole loop repeats, demonstrating the graceful degradation
// the paper attributes to overlapping receptive fields and lateral
// inhibition.
//
//   $ ./retina_rank_order
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/spinnaker.hpp"

namespace {

using namespace spinn;

/// Replay a retina volley through the machine and return the volley as
/// reconstructed from the *recorded* spikes (arrival order on the fabric).
std::vector<neural::RetinaSpike> run_on_machine(
    const neural::Retina& retina,
    const std::vector<neural::RetinaSpike>& volley) {
  SystemConfig cfg;
  cfg.machine.width = 3;
  cfg.machine.height = 3;
  cfg.machine.chip.num_cores = 10;
  cfg.mapper.neurons_per_core = 128;
  cfg.mapper.scatter = true;  // ganglia scattered over the machine (§3.2)
  System sys(cfg);

  // One spike-source neuron per ganglion; latency (ms) -> spike tick.
  std::vector<std::vector<std::uint32_t>> schedule(retina.num_ganglia());
  for (const neural::RetinaSpike& s : volley) {
    const auto tick = static_cast<std::uint32_t>(1.0 + s.latency_ms);
    schedule[s.ganglion].push_back(tick);
  }
  neural::Network net;
  const auto pop = net.add_spike_source("retina", schedule);
  // A collector population so the volley actually crosses the fabric.
  const auto collector = net.add_lif("collector", 64);
  net.connect(pop, collector, neural::Connector::fixed_probability(0.05),
              neural::ValueDist::fixed(0.5), neural::ValueDist::fixed(1.0));

  const auto load = sys.load(net);
  if (!load.ok) return {};
  const std::uint32_t max_tick = 200;
  sys.run(static_cast<TimeNs>(max_tick) * kMillisecond);

  // Order of arrival at the recorder is the machine's view of the code.
  const auto& slices = load.placement.slices;
  std::vector<neural::RetinaSpike> received;
  for (const auto& e : sys.spikes().events()) {
    // Map the AER key back to a ganglion index.
    for (const std::size_t si : load.placement.by_population[pop]) {
      const map::Slice& s = slices[si];
      if (e.key >= s.key_base && e.key < s.key_base + s.num_neurons) {
        const std::uint32_t ganglion =
            s.first_neuron + (e.key - s.key_base);
        // Reuse the encoder's response value for decoding weight.
        for (const neural::RetinaSpike& orig : volley) {
          if (orig.ganglion == ganglion) {
            received.push_back(neural::RetinaSpike{
                ganglion, static_cast<double>(e.time) / kMillisecond,
                orig.response});
            break;
          }
        }
      }
    }
  }
  std::sort(received.begin(), received.end(),
            [](const neural::RetinaSpike& a, const neural::RetinaSpike& b) {
              return a.latency_ms < b.latency_ms;
            });
  return received;
}

}  // namespace

int main() {
  using namespace spinn;
  const int image_size = 32;
  neural::RetinaConfig rcfg;
  const neural::Image stimulus =
      neural::make_gaussian_blob(image_size, 16.0, 14.0, 3.5);

  std::printf("retina rank-order demo (§5.4): %dx%d stimulus\n\n",
              image_size, image_size);
  std::printf("%-12s %14s %16s %18s\n", "lesion", "volley->fabric",
              "spikes received", "reconstruction r");

  Rng rng(7);
  for (const double loss : {0.0, 0.2, 0.4}) {
    neural::Retina retina(image_size, rcfg);
    if (loss > 0) retina.kill_fraction(loss, rng);
    const auto volley = retina.encode(stimulus);
    const auto received = run_on_machine(retina, volley);
    const neural::Image rec = retina.decode(received, 100000);
    const double corr = neural::image_correlation(stimulus, rec);
    char label[16];
    std::snprintf(label, sizeof label, "%.0f%%", loss * 100.0);
    std::printf("%-12s %14zu %16zu %18.3f\n", label, volley.size(),
                received.size(), corr);
  }

  std::printf("\nThe spike order survives the trip through the multicast "
              "fabric (delivery is microseconds on a\nmillisecond code), "
              "and reconstruction degrades gracefully as ganglia die — "
              "the §5.4 story, run on\nthe machine rather than on paper.\n");
  return 0;
}
