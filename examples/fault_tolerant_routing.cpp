// Live fault injection: a spike stream crosses an 8x8 torus while we kill
// and then repair the link under it.  Watch the Fig. 8 emergency routing
// engage, the Monitor Processor get notified, and normal flow resume.
//
//   $ ./fault_tolerant_routing
#include <cstdio>
#include <memory>

#include "core/spinnaker.hpp"

int main() {
  using namespace spinn;

  sim::Simulator sim(3);
  mesh::MachineConfig mc;
  mc.width = 8;
  mc.height = 8;
  mc.chip.num_cores = 2;
  mesh::Machine machine(sim, mc);

  // Stream: (1,4) -> East -> ... -> (6,4), delivered to core 1 there.
  const RoutingKey key = 0x80;
  machine.chip_at({1, 4}).router().mc_table().add(
      {key, ~0u, router::Route::to_link(LinkDir::East)});
  machine.chip_at({6, 4}).router().mc_table().add(
      {key, ~0u, router::Route::to_core(1)});

  sim::Histogram latency(0, 1e6, 100);
  auto probe = std::make_unique<core::LatencyProbe>(&latency);
  auto* probe_ptr = probe.get();
  machine.chip_at({6, 4}).core(1).load_program(std::move(probe));
  machine.chip_at({6, 4}).core(1).start();

  core::TrafficSource::Config tc;
  tc.keys = {key};
  tc.packets_per_tick = 2.0;  // lightly loaded, as the fabric is designed for
  auto source = std::make_unique<core::TrafficSource>(tc);
  auto* source_ptr = source.get();
  machine.chip_at({1, 4}).core(1).load_program(std::move(source));
  machine.chip_at({1, 4}).core(1).start();

  // Monitor-processor subscriptions on the chip upstream of the fault.
  std::uint64_t er_notifications = 0;
  std::uint64_t drop_notifications = 0;
  machine.chip_at({3, 4}).set_monitor_event_handler(
      [&](const router::RouterEvent& e) {
        if (e.type == router::RouterEventType::EmergencyInvoked) {
          ++er_notifications;
        } else {
          ++drop_notifications;
        }
      });

  auto report = [&](const char* phase) {
    const auto t = machine.fabric_totals();
    std::printf("%-28s sent=%6llu delivered=%6llu emergency=%5llu "
                "dropped=%4llu monitorER=%5llu monitorDrop=%4llu\n",
                phase, static_cast<unsigned long long>(source_ptr->sent()),
                static_cast<unsigned long long>(probe_ptr->received()),
                static_cast<unsigned long long>(t.emergency_first_leg),
                static_cast<unsigned long long>(t.dropped),
                static_cast<unsigned long long>(er_notifications),
                static_cast<unsigned long long>(drop_notifications));
  };

  std::printf("fault-tolerant routing demo: stream (1,4) -> (6,4), link "
              "(3,4)->(4,4) killed at 50 ms, repaired at 100 ms\n\n");

  machine.start_all_timers();
  sim.run_until(50 * kMillisecond);
  report("t=50ms  healthy:");

  machine.fail_link({3, 4}, LinkDir::East);
  sim.run_until(100 * kMillisecond);
  report("t=100ms link dead (ER active):");

  machine.repair_link({3, 4}, LinkDir::East);
  sim.run_until(150 * kMillisecond);
  report("t=150ms link repaired:");

  machine.stop_all_timers();
  sim.run_until(sim.now() + 2 * kMillisecond);

  const double delivery =
      100.0 * static_cast<double>(probe_ptr->received()) /
      static_cast<double>(source_ptr->sent());
  std::printf("\nfinal delivery: %.2f%%  (mean latency %.2f us, p99 %.2f "
              "us)\n",
              delivery, latency.summary().mean() / 1e3,
              latency.percentile(0.99) / 1e3);
  std::printf("Every packet that met the dead link took the two-hop "
              "triangle detour (NE then S) — \"the Router\nwill invoke "
              "emergency routing to redirect packets ... around the two "
              "other sides of one of the\nmesh triangles\" (Fig. 8) — and "
              "the Monitor Processor was told each time.\n");
  return 0;
}
